package tukey

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"net/url"
	"testing"

	"osdc/internal/ark"
	"osdc/internal/datasets"
	"osdc/internal/datastore"
	"osdc/internal/dfs"
	"osdc/internal/sim"
	"osdc/internal/simdisk"
	"osdc/internal/simnet"
)

// TestRouteCostTable pins the route-weighted rate-limit charges: a launch
// costs an order of magnitude more than a status read, staging sits in
// between, and unknown routes default to one token.
func TestRouteCostTable(t *testing.T) {
	want := map[string]float64{
		"POST /console/launch":           10,
		"POST /console/terminate":        5,
		"POST /console/stop":             5,
		"POST /console/datasets/stage":   4,
		"GET /console/instances":         2,
		"GET /console/status":            1,
		"GET /console/usage":             1,
		"GET /console/datasets":          1,
		"GET /console/datasets/replicas": 1,
		"POST /login":                    1,
		"GET /no/such/route":             1,
	}
	for key, cost := range want {
		method, path, _ := splitRouteKey(key)
		if got := routeCost(method, path); got != cost {
			t.Errorf("routeCost(%s) = %g, want %g", key, got, cost)
		}
	}
	// The ordering the ROADMAP asked for: launch ≫ dataset stage ≫ read.
	launch := routeCost("POST", "/console/launch")
	stage := routeCost("POST", "/console/datasets/stage")
	read := routeCost("GET", "/console/status")
	if !(launch > stage && stage > read) {
		t.Fatalf("cost ordering broken: launch %g, stage %g, read %g", launch, stage, read)
	}
}

func splitRouteKey(key string) (method, path string, ok bool) {
	for i := range key {
		if key[i] == ' ' {
			return key[:i], key[i+1:], true
		}
	}
	return "", key, false
}

// TestRouteWeightedLimiting proves the weights bite through the console: a
// bucket sized for many reads admits only a few launches.
func TestRouteWeightedLimiting(t *testing.T) {
	r := newRig(t)
	limiter := NewRateLimiter(0.001, 25) // effectively no refill in-test
	console := &Console{MW: r.mw, Limiter: limiter}
	srv := httptest.NewServer(console)
	t.Cleanup(srv.Close)
	tok := consoleLogin(t, srv)

	// 25 tokens admit two launches (10 each) and reject the third, while
	// the same budget would have admitted 25 status reads.
	launches := 0
	for i := 0; i < 3; i++ {
		resp := consoleDo(t, srv, "POST", "/console/launch", tok,
			`{"cloud":"adler","name":"w","flavor":"m1.small"}`)
		if resp.StatusCode == http.StatusAccepted {
			launches++
		} else if resp.StatusCode != http.StatusTooManyRequests {
			t.Fatalf("launch %d status = %d", i, resp.StatusCode)
		}
		resp.Body.Close()
	}
	if launches != 2 {
		t.Fatalf("bucket of 25 admitted %d launches, want 2 (cost 10 each)", launches)
	}
	// The leftover 5 tokens still serve cheap reads.
	for i := 0; i < 5; i++ {
		resp := consoleDo(t, srv, "GET", "/console/status", tok, "")
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("read %d after launch storm = %d, want 200", i, resp.StatusCode)
		}
	}
	resp := consoleDo(t, srv, "GET", "/console/status", tok, "")
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("drained bucket still admitted a read: %d", resp.StatusCode)
	}
}

// dataPlaneRig is a console with the replication coordinator wired in:
// two stores over the WAN topology, masters on site-root.
func dataPlaneRig(t *testing.T) (*rig, *httptest.Server, *datastore.Coordinator, *datastore.Store) {
	t.Helper()
	r := newRig(t)
	nw := simnet.BuildOSDCTopology(r.e, simnet.DefaultWAN())

	vol := func(name string) *dfs.Volume {
		d1 := simdisk.New(r.e, name+"-d0", 3072e6, 1136e6, 1<<40)
		d2 := simdisk.New(r.e, name+"-d1", 3072e6, 1136e6, 1<<40)
		v, err := dfs.NewVolume(r.e, name, 2, dfs.Version33,
			[]*dfs.Brick{dfs.NewBrick(name+"-b0", name+"-n0", d1), dfs.NewBrick(name+"-b1", name+"-n1", d2)})
		if err != nil {
			t.Fatal(err)
		}
		return v
	}
	cat := datasets.NewCatalog(ark.NewService(""), vol("cat"))
	cat.AddCurator("walt")
	if _, err := cat.Publish("walt", datasets.Dataset{Name: "EO-1 Scenes", SizeBytes: 2 << 30, Discipline: "earth science"}); err != nil {
		t.Fatal(err)
	}
	root := datastore.NewStore("site-root", simnet.SiteChicagoKenwood, vol("root"))
	adler := datastore.NewStore("adler", simnet.SiteChicagoKenwood, vol("adler"))
	if err := root.Put(datastore.Replica{Dataset: "EO-1 Scenes", SizeBytes: 2 << 30, Version: 1}); err != nil {
		t.Fatal(err)
	}
	coord := datastore.NewCoordinator(r.e, nw, cat, datastore.Options{Factor: 1, Seed: 7}, root, adler)

	console := &Console{MW: r.mw, Catalog: cat, Replication: coord}
	srv := httptest.NewServer(console)
	t.Cleanup(srv.Close)
	return r, srv, coord, adler
}

// TestConsoleStageAndReplicas walks the data-plane routes end to end:
// stage a dataset onto the cloud's site, advance the virtual clock past
// the transfer, and watch the placement view pick the replica up.
func TestConsoleStageAndReplicas(t *testing.T) {
	r, srv, coord, adlerStore := dataPlaneRig(t)
	tok := consoleLogin(t, srv)

	// Both routes require a session.
	resp := consoleDo(t, srv, "GET", "/console/datasets/replicas", "", "")
	if resp.StatusCode != http.StatusUnauthorized {
		t.Fatalf("unauthenticated replicas = %d", resp.StatusCode)
	}
	resp.Body.Close()
	resp = consoleDo(t, srv, "POST", "/console/datasets/stage", "", `{"dataset":"x","cloud":"y"}`)
	if resp.StatusCode != http.StatusUnauthorized {
		t.Fatalf("unauthenticated stage = %d", resp.StatusCode)
	}
	resp.Body.Close()

	// Stage EO-1 onto the adler site: accepted, with a transfer ETA.
	resp = consoleDo(t, srv, "POST", "/console/datasets/stage", tok,
		`{"dataset":"EO-1 Scenes","cloud":"adler"}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("stage = %d", resp.StatusCode)
	}
	var st datastore.StageStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if st.State != "staging" || st.From != "site-root" || st.ETASecs <= 0 {
		t.Fatalf("stage status = %+v", st)
	}

	// Let the flow arrive on the virtual clock, then re-stage: present.
	r.e.RunFor(sim.Duration(st.ETASecs) + sim.Second)
	resp = consoleDo(t, srv, "POST", "/console/datasets/stage", tok,
		`{"dataset":"EO-1 Scenes","cloud":"adler"}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("re-stage = %d", resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if st.State != "present" {
		t.Fatalf("re-stage state = %q, want present", st.State)
	}
	if _, err := adlerStore.Get("EO-1 Scenes"); err != nil {
		t.Fatalf("staged replica missing from the store: %v", err)
	}

	// The placement view reports the replica after a round refreshes it.
	coord.Round()
	resp = consoleDo(t, srv, "GET", "/console/datasets/replicas?dataset="+url.QueryEscape("EO-1 Scenes"), tok, "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("replicas = %d", resp.StatusCode)
	}
	var view struct {
		Placement []datastore.PlacementRow `json:"placement"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&view); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(view.Placement) != 1 || len(view.Placement[0].Sites) != 2 {
		t.Fatalf("placement = %+v, want EO-1 on both sites", view.Placement)
	}

	// Unknown dataset or cloud: 409 with the coordinator's error.
	resp = consoleDo(t, srv, "POST", "/console/datasets/stage", tok,
		`{"dataset":"No Such","cloud":"adler"}`)
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("stage unknown dataset = %d, want 409", resp.StatusCode)
	}
	resp.Body.Close()

	// Without a coordinator the routes answer 503.
	bare := httptest.NewServer(&Console{MW: r.mw})
	t.Cleanup(bare.Close)
	req, _ := http.NewRequest("GET", bare.URL+"/console/datasets/replicas", nil)
	req.Header.Set("X-Tukey-Session", tok)
	resp2, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("replicas without coordinator = %d, want 503", resp2.StatusCode)
	}
}
