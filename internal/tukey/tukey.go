// Package tukey implements Tukey, the OSDC's middleware and console (paper
// §5, Figure 1): "a centralized and intuitive web interface for accessing
// public and private cloud services".
//
// The middleware consists of HTTP-based proxies for authentication and API
// translation that sit between the Tukey web application and the cloud
// software stacks (§5.2):
//
//   - the auth proxy accepts Shibboleth- or OpenID-style logins, then looks
//     up the cloud credentials associated with the federated identifier in
//     the user database;
//   - the translation proxies accept requests in the OpenStack API shape
//     and issue commands to each registered cloud according to that cloud's
//     configuration (OpenStack dialect passes through; Eucalyptus dialect
//     is translated to EC2 query calls), then transform each result, tag it
//     with the cloud name, and aggregate everything into one JSON response
//     in the OpenStack format.
//
// The console (console.go) builds the user-facing endpoints — instances,
// usage/billing, file sharing, public datasets — on the middleware.
package tukey

import (
	"fmt"
	"net/http"
	"sort"
	"sync"
	"time"

	"osdc/internal/cloudapi"
)

// Provider identifies a federated login method.
type Provider string

// Supported identity providers (§5.2).
const (
	Shibboleth Provider = "shibboleth"
	OpenID     Provider = "openid"
)

// Identity is the federated identifier an IdP asserts.
type Identity struct {
	Provider   Provider
	Identifier string // eppn for Shibboleth, URL for OpenID
}

// IdP validates login secrets and asserts identifiers. Implementations
// model the redirect/assert flows' outcome.
type IdP interface {
	Name() Provider
	// Assert validates the user's secret and returns the federated
	// identifier.
	Assert(username, secret string) (Identity, error)
}

// ShibbolethIdP asserts eduPerson principal names (user@institution).
type ShibbolethIdP struct {
	Institution string
	passwords   map[string]string
}

// NewShibboleth creates a campus IdP.
func NewShibboleth(institution string) *ShibbolethIdP {
	return &ShibbolethIdP{Institution: institution, passwords: make(map[string]string)}
}

// Enroll registers a campus account.
func (s *ShibbolethIdP) Enroll(user, password string) { s.passwords[user] = password }

// Name implements IdP.
func (s *ShibbolethIdP) Name() Provider { return Shibboleth }

// Assert implements IdP.
func (s *ShibbolethIdP) Assert(username, secret string) (Identity, error) {
	if p, ok := s.passwords[username]; !ok || p != secret {
		return Identity{}, fmt.Errorf("tukey: shibboleth assertion failed for %s", username)
	}
	return Identity{Provider: Shibboleth, Identifier: username + "@" + s.Institution}, nil
}

// OpenIDIdP asserts identifier URLs.
type OpenIDIdP struct {
	Realm   string
	secrets map[string]string
}

// NewOpenID creates an OpenID provider.
func NewOpenID(realm string) *OpenIDIdP {
	return &OpenIDIdP{Realm: realm, secrets: make(map[string]string)}
}

// Enroll registers an account.
func (o *OpenIDIdP) Enroll(user, secret string) { o.secrets[user] = secret }

// Name implements IdP.
func (o *OpenIDIdP) Name() Provider { return OpenID }

// Assert implements IdP.
func (o *OpenIDIdP) Assert(username, secret string) (Identity, error) {
	if p, ok := o.secrets[username]; !ok || p != secret {
		return Identity{}, fmt.Errorf("tukey: openid check failed for %s", username)
	}
	return Identity{Provider: OpenID, Identifier: o.Realm + "/" + username}, nil
}

// CloudCredential is one cloud's credential for a user, stored in the user
// database keyed by federated identifier.
type CloudCredential struct {
	Cloud     string
	AuthUser  string // the identity the cloud's native API expects
	AuthToken string // opaque secret (unused by the simulated stacks)
}

// CloudConfig describes one attached cloud: its dialect and how to reach
// it, the "configuration file" of §5.2.
//
// API is the transport to the cloud. Leave it nil and set Endpoint to have
// AttachCloud build a cloudapi.Remote speaking the cloud's native dialect
// over HTTP (the common case, and the historic behavior); or inject any
// cloudapi.CloudAPI — a cloudapi.Local for an in-process cloud, a Remote
// for a per-site server — to choose the topology explicitly.
type CloudConfig struct {
	Name     string
	Stack    string // "openstack" or "eucalyptus"
	Endpoint string // base URL of the native API (used when API is nil)
	API      cloudapi.CloudAPI
	// FlavorMap translates canonical (OpenStack) flavor names to this
	// cloud's native names; identity if nil or missing.
	FlavorMap map[string]string
}

// Middleware is the Tukey middleware: user DB + auth proxy + translation
// proxies.
//
// Every field behind mu — the user DB, the attached clouds and the
// counters — is read and written from concurrent HTTP handlers, so all
// paths (including the counter increments) go through the lock. Sessions
// live in the SessionStore, which synchronizes itself; the outbound cloud
// round trips happen with the lock released.
type Middleware struct {
	mu      sync.Mutex
	idps    map[Provider]IdP
	userDB  map[string][]CloudCredential // federated identifier -> creds
	clouds  []CloudConfig
	store   SessionStore
	nextTok int
	// tokenPrefix distinguishes tokens minted by different console
	// replicas sharing one session store: every replica counts its own
	// nextTok, so without a per-replica prefix two replicas would mint the
	// same token for different identities (a cross-user session collision).
	tokenPrefix string
	ttl         time.Duration    // session lifetime; 0 = sessions never expire
	now         func() time.Time // test hook; time.Now when nil
	client      *http.Client

	Logins       int64
	LoginFails   int64
	Translations int64
}

// NewMiddleware creates an empty middleware backed by an in-memory session
// store.
func NewMiddleware() *Middleware {
	return &Middleware{
		idps:   make(map[Provider]IdP),
		userDB: make(map[string][]CloudCredential),
		store:  NewMemorySessionStore(),
		// The timeout keeps a hung cloud from pinning console handler
		// goroutines (and, via pollers, the clock driver) forever.
		client: &http.Client{Timeout: cloudapi.DefaultTimeout},
	}
}

// SetSessionStore replaces the session store (e.g. with one shared across
// console replicas). Call before traffic starts; sessions in the old store
// are not migrated.
func (m *Middleware) SetSessionStore(s SessionStore) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.store = s
}

// SetTokenPrefix namespaces this middleware's session tokens
// ("tukey-sess-<prefix>%06d"). Every replica sharing a session store must
// carry a distinct prefix or two replicas' independent token counters
// will collide in the shared store. Call before traffic starts.
func (m *Middleware) SetTokenPrefix(p string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.tokenPrefix = p
}

// Replica clones this middleware into a stateless peer sharing its IdPs
// (same pointers: enrollment tables are setup-time state), a snapshot of
// its user DB and attached clouds, and the given session store — nil
// shares this middleware's store. tokenPrefix must be unique per replica.
// Credentials granted after the clone go only to the middleware they are
// granted on; core.Federation.EnrollResearcher fans grants across every
// replica it tracks.
func (m *Middleware) Replica(store SessionStore, tokenPrefix string) *Middleware {
	m.mu.Lock()
	defer m.mu.Unlock()
	r := &Middleware{
		idps:        make(map[Provider]IdP, len(m.idps)),
		userDB:      make(map[string][]CloudCredential, len(m.userDB)),
		clouds:      append([]CloudConfig(nil), m.clouds...),
		store:       store,
		tokenPrefix: tokenPrefix,
		ttl:         m.ttl,
		now:         m.now,
		client:      m.client,
	}
	if store == nil {
		r.store = m.store
	}
	for p, idp := range m.idps {
		r.idps[p] = idp
	}
	for id, creds := range m.userDB {
		r.userDB[id] = append([]CloudCredential(nil), creds...)
	}
	return r
}

// sessionStore returns the current store under the lock.
func (m *Middleware) sessionStore() SessionStore {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.store
}

// SetHTTPTimeout replaces the per-request deadline on the middleware's
// outbound HTTP client — the one AttachCloud hands to endpoint-built
// Remotes (the -site-timeout knob; cloudapi.DefaultTimeout when never
// called). Call before attaching clouds: already-built Remotes keep the
// client they were constructed with.
func (m *Middleware) SetHTTPTimeout(d time.Duration) {
	if d <= 0 {
		d = cloudapi.DefaultTimeout
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.client = &http.Client{Timeout: d}
}

// SetSessionTTL bounds session lifetime: tokens minted after the call
// expire ttl of wall-clock time after login and are reaped lazily on their
// next use. ttl <= 0 restores the default (sessions live forever).
func (m *Middleware) SetSessionTTL(ttl time.Duration) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if ttl < 0 {
		ttl = 0
	}
	m.ttl = ttl
}

func (m *Middleware) wallNow() time.Time {
	if m.now != nil {
		return m.now()
	}
	return time.Now()
}

// RegisterIdP attaches an identity provider.
func (m *Middleware) RegisterIdP(p IdP) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.idps[p.Name()] = p
}

// AttachCloud registers a cloud stack. With cfg.API nil, an Endpoint is
// required and the cloud is reached through a cloudapi.Remote speaking its
// native dialect; with cfg.API set, Name and Stack default to what the API
// reports.
func (m *Middleware) AttachCloud(cfg CloudConfig) {
	if cfg.API == nil {
		if cfg.Stack != "openstack" && cfg.Stack != "eucalyptus" {
			panic("tukey: unsupported stack " + cfg.Stack)
		}
		if cfg.Endpoint == "" {
			panic("tukey: AttachCloud needs an API or an Endpoint")
		}
		m.mu.Lock()
		client := m.client
		m.mu.Unlock()
		cfg.API = cloudapi.NewRemote(cfg.Name, cfg.Stack, cfg.Endpoint, client)
	} else {
		if cfg.Name == "" {
			cfg.Name = cfg.API.Name()
		}
		if cfg.Stack == "" {
			cfg.Stack = cfg.API.Stack()
		}
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.clouds = append(m.clouds, cfg)
}

// cloudConfigs snapshots the attached clouds so fan-out loops can run
// without the lock.
func (m *Middleware) cloudConfigs() []CloudConfig {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]CloudConfig(nil), m.clouds...)
}

// cloudConfigByName copies out one attached cloud's config.
func (m *Middleware) cloudConfigByName(name string) (CloudConfig, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, c := range m.clouds {
		if c.Name == name {
			return c, true
		}
	}
	return CloudConfig{}, false
}

// Clouds returns the attached cloud names in order.
func (m *Middleware) Clouds() []string {
	var out []string
	for _, c := range m.cloudConfigs() {
		out = append(out, c.Name)
	}
	return out
}

// GrantCredentials binds per-cloud credentials to a federated identifier.
func (m *Middleware) GrantCredentials(identifier string, creds ...CloudCredential) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.userDB[identifier] = append(m.userDB[identifier], creds...)
}

// Login runs the auth-proxy flow: the IdP asserts the identifier, then the
// proxy looks up the cloud credentials for it (§5.2). Returns a session
// token.
func (m *Middleware) Login(p Provider, username, secret string) (string, error) {
	m.mu.Lock()
	idp, ok := m.idps[p]
	m.mu.Unlock()
	if !ok {
		return "", fmt.Errorf("tukey: no identity provider %q", p)
	}
	// The IdP assertion happens outside the lock; enrolled IdP tables are
	// setup-time state.
	id, err := idp.Assert(username, secret)
	m.mu.Lock()
	if err != nil {
		m.LoginFails++
		m.mu.Unlock()
		return "", err
	}
	if _, ok := m.userDB[id.Identifier]; !ok {
		m.LoginFails++
		m.mu.Unlock()
		return "", fmt.Errorf("tukey: %s authenticated but has no OSDC account", id.Identifier)
	}
	m.nextTok++
	tok := fmt.Sprintf("tukey-sess-%s%06d", m.tokenPrefix, m.nextTok)
	s := Session{Identity: id}
	if m.ttl > 0 {
		s.Expires = m.wallNow().Add(m.ttl)
	}
	store := m.store
	m.Logins++
	m.mu.Unlock()
	// The Put runs outside m.mu: with a wire-backed store it is a network
	// round trip, and holding the middleware lock across it serializes
	// every login on the replica (the console-knee mutex profile put 95%
	// of all lock delay here). Token uniqueness comes from nextTok, minted
	// under the lock above.
	store.Put(tok, s)
	return tok, nil
}

// identityFor resolves a session token, reaping it if it has expired and
// sliding its expiry forward if it is active.
func (m *Middleware) identityFor(token string) (Identity, bool) {
	m.mu.Lock()
	store, ttl := m.store, m.ttl
	m.mu.Unlock()
	s, ok := store.Get(token)
	if !ok {
		return Identity{}, false
	}
	now := m.wallNow()
	if s.expired(now) {
		store.Delete(token)
		return Identity{}, false
	}
	// Sliding expiry: touching a session renews it to now+ttl, so a
	// session busy on replica A cannot be reaped by ExpireBefore running
	// on replica B against the shared store with a stale last-seen. The
	// write is elided until at least ttl/8 of the lifetime has been
	// consumed, bounding refresh traffic against the shared store to at
	// most 8 writes per ttl per active session.
	if ttl > 0 && !s.Expires.IsZero() {
		if fresh := now.Add(ttl); fresh.Sub(s.Expires) >= ttl/8 {
			s.Expires = fresh
			store.Put(token, s)
		}
	}
	return s.Identity, true
}

// SessionCount reports live (unexpired) sessions, reaping expired ones on
// the way — the console's gauge of concurrent users.
func (m *Middleware) SessionCount() int {
	store := m.sessionStore()
	store.ExpireBefore(m.wallNow())
	return store.Count()
}

// credsFor returns the user's credential for a cloud, if any.
func (m *Middleware) credsFor(id Identity, cloud string) (CloudCredential, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, c := range m.userDB[id.Identifier] {
		if c.Cloud == cloud {
			return c, true
		}
	}
	return CloudCredential{}, false
}

// TaggedServer is one VM in the aggregated OpenStack-format response,
// tagged with its cloud name (§5.2: "tagged with the cloud name and
// aggregated into a JSON response that matches the format of the OpenStack
// API").
type TaggedServer struct {
	Cloud  string `json:"cloud"`
	ID     string `json:"id"`
	Name   string `json:"name"`
	Status string `json:"status"`
	Flavor string `json:"flavorRef"`
}

// ListServers fans out to every cloud the user holds credentials for,
// translating per dialect, and aggregates.
func (m *Middleware) ListServers(token string) ([]TaggedServer, error) {
	id, ok := m.identityFor(token)
	if !ok {
		return nil, fmt.Errorf("tukey: invalid session")
	}
	var out []TaggedServer
	for _, cfg := range m.cloudConfigs() {
		cred, ok := m.credsFor(id, cfg.Name)
		if !ok {
			continue
		}
		servers, err := m.listOne(cfg, cred)
		if err != nil {
			return nil, fmt.Errorf("tukey: cloud %s: %w", cfg.Name, err)
		}
		out = append(out, servers...)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Cloud != out[j].Cloud {
			return out[i].Cloud < out[j].Cloud
		}
		return out[i].ID < out[j].ID
	})
	return out, nil
}

// countTranslation bumps the translation counter under the lock.
func (m *Middleware) countTranslation() {
	m.mu.Lock()
	m.Translations++
	m.mu.Unlock()
}

// listOne asks one cloud for the user's servers through its transport —
// the dialect translation (OpenStack JSON passthrough, EC2 query/XML
// re-shaping) lives in cloudapi.Remote now — and tags the results.
func (m *Middleware) listOne(cfg CloudConfig, cred CloudCredential) ([]TaggedServer, error) {
	m.countTranslation()
	instances, err := cfg.API.Instances(cred.AuthUser)
	if err != nil {
		return nil, err
	}
	var out []TaggedServer
	for _, i := range instances {
		out = append(out, TaggedServer{Cloud: cfg.Name, ID: i.ID, Name: i.Name,
			Status: i.Status, Flavor: i.Flavor})
	}
	return out, nil
}

// LaunchServer provisions a VM on a named cloud via the appropriate dialect
// and returns the tagged server.
func (m *Middleware) LaunchServer(token, cloud, name, flavor string) (*TaggedServer, error) {
	id, ok := m.identityFor(token)
	if !ok {
		return nil, fmt.Errorf("tukey: invalid session")
	}
	cfg, ok := m.cloudConfigByName(cloud)
	if !ok {
		return nil, fmt.Errorf("tukey: unknown cloud %q", cloud)
	}
	cred, ok := m.credsFor(id, cloud)
	if !ok {
		return nil, fmt.Errorf("tukey: no credentials on %s for %s", cloud, id.Identifier)
	}
	native := flavor
	if cfg.FlavorMap != nil {
		if f, ok := cfg.FlavorMap[flavor]; ok {
			native = f
		}
	}
	m.countTranslation()
	inst, err := cfg.API.Launch(cred.AuthUser, name, native, "")
	if err != nil {
		return nil, fmt.Errorf("tukey: %s: %w", cloud, err)
	}
	return &TaggedServer{Cloud: cloud, ID: inst.ID, Name: name,
		Status: inst.Status, Flavor: native}, nil
}

// TerminateServer releases a VM on a named cloud.
func (m *Middleware) TerminateServer(token, cloud, id string) error {
	ident, ok := m.identityFor(token)
	if !ok {
		return fmt.Errorf("tukey: invalid session")
	}
	cfg, ok := m.cloudConfigByName(cloud)
	if !ok {
		return fmt.Errorf("tukey: unknown cloud %q", cloud)
	}
	cred, ok := m.credsFor(ident, cloud)
	if !ok {
		return fmt.Errorf("tukey: no credentials on %s", cloud)
	}
	m.countTranslation()
	if err := cfg.API.Terminate(cred.AuthUser, id); err != nil {
		return fmt.Errorf("tukey: %s: %w", cloud, err)
	}
	return nil
}

// StopServer shuts one of the user's servers down on the named cloud
// (OpenStack os-stop / EC2 StopInstances through the native dialect): it
// reaches SHUTOFF after the cloud's stop delay and stops accruing usage,
// keeping its allocation.
func (m *Middleware) StopServer(token, cloud, id string) error {
	ident, ok := m.identityFor(token)
	if !ok {
		return fmt.Errorf("tukey: invalid session")
	}
	cfg, ok := m.cloudConfigByName(cloud)
	if !ok {
		return fmt.Errorf("tukey: unknown cloud %q", cloud)
	}
	cred, ok := m.credsFor(ident, cloud)
	if !ok {
		return fmt.Errorf("tukey: no credentials on %s", cloud)
	}
	m.countTranslation()
	if err := cfg.API.Stop(cred.AuthUser, id); err != nil {
		return fmt.Errorf("tukey: %s: %w", cloud, err)
	}
	return nil
}
