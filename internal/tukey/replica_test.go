package tukey

import (
	"bufio"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// putCountingStore wraps a SessionStore and counts Puts — the observable for
// the sliding-TTL write-elision guard.
type putCountingStore struct {
	SessionStore
	puts int
}

func (c *putCountingStore) Put(token string, s Session) {
	c.puts++
	c.SessionStore.Put(token, s)
}

// TestSlidingTTLSurvivesSharedSweep is the shared-state-plane TTL
// regression: a session actively used on replica A must not be reaped by
// an expiry sweep (SessionCount → ExpireBefore) running on replica B
// against the shared store. Before sliding expiry, the session's Expires
// was fixed at login time, so B's sweep at login+TTL killed sessions A had
// served seconds earlier.
func TestSlidingTTLSurvivesSharedSweep(t *testing.T) {
	r := newRig(t)
	clock := time.Unix(1_350_000_000, 0)
	r.mw.now = func() time.Time { return clock }
	r.mw.SetSessionTTL(30 * time.Minute)
	store := &putCountingStore{SessionStore: NewMemorySessionStore()}
	r.mw.SetSessionStore(store)
	replB := r.mw.Replica(nil, "b-") // shares store and clock

	tok, err := r.mw.Login(Shibboleth, "alice", "pw1")
	if err != nil {
		t.Fatal(err)
	}
	if store.puts != 1 {
		t.Fatalf("puts after login = %d, want 1", store.puts)
	}

	// Touch soon after login: under ttl/8 of lifetime consumed, the
	// refresh write is elided — replicas must not turn every request into
	// a write against the shared store.
	clock = clock.Add(time.Minute)
	if _, ok := r.mw.identityFor(tok); !ok {
		t.Fatal("fresh session rejected on A")
	}
	if store.puts != 1 {
		t.Fatalf("puts after early touch = %d, want 1 (refresh should be elided)", store.puts)
	}

	// Touch at +20m: past the elision guard, the expiry slides to +50m.
	clock = clock.Add(19 * time.Minute)
	if _, ok := r.mw.identityFor(tok); !ok {
		t.Fatal("active session rejected on A")
	}
	if store.puts != 2 {
		t.Fatalf("puts after sliding refresh = %d, want 2", store.puts)
	}

	// +35m: past the login-time expiry. Replica B's sweep runs against the
	// shared store — the refreshed session must survive it.
	clock = clock.Add(15 * time.Minute)
	if n := replB.SessionCount(); n != 1 {
		t.Fatalf("replica B reaped an active session: count = %d, want 1", n)
	}
	if _, ok := replB.identityFor(tok); !ok {
		t.Fatal("session touched on A rejected on B after B's sweep")
	}

	// B's touch at +35m slid the expiry again, to +65m. Idle past that:
	// now it really is dead, on both replicas.
	clock = clock.Add(31 * time.Minute)
	if _, ok := r.mw.identityFor(tok); ok {
		t.Fatal("idle session accepted past slid expiry")
	}
	if n := replB.SessionCount(); n != 0 {
		t.Fatalf("count after true expiry = %d, want 0", n)
	}
}

// TestReplicaTokensShareStoreWithoutColliding: two replicas share one
// store; each has an independent token counter, so without per-replica
// prefixes both would mint "tukey-sess-000001" and the second login would
// silently overwrite (and hijack) the first session.
func TestReplicaTokensShareStoreWithoutColliding(t *testing.T) {
	r := newRig(t)
	replB := r.mw.Replica(nil, "b-")

	tokA, err := r.mw.Login(Shibboleth, "alice", "pw1")
	if err != nil {
		t.Fatal(err)
	}
	tokB, err := replB.Login(Shibboleth, "alice", "pw1")
	if err != nil {
		t.Fatal(err)
	}
	if tokA == tokB {
		t.Fatalf("replicas minted the same token %q for independent logins", tokA)
	}
	if !strings.HasPrefix(tokB, "tukey-sess-b-") {
		t.Fatalf("replica token = %q, want tukey-sess-b- prefix", tokB)
	}
	// Cross-replica resolution: a token minted on A is valid on B (the
	// whole point of the shared store) and vice versa.
	if id, ok := replB.identityFor(tokA); !ok || id.Identifier != "alice@uchicago.edu" {
		t.Fatalf("token minted on A not valid on B: ok=%v id=%v", ok, id)
	}
	if id, ok := r.mw.identityFor(tokB); !ok || id.Identifier != "alice@uchicago.edu" {
		t.Fatalf("token minted on B not valid on A: ok=%v id=%v", ok, id)
	}
	if n := r.mw.SessionCount(); n != 2 {
		t.Fatalf("shared store session count = %d, want 2", n)
	}
}

// TestChainOrder pins interceptor composition: the first layer passed to
// Chain is outermost, and a layer that writes a response stops the chain.
func TestChainOrder(t *testing.T) {
	var order []string
	layer := func(name string) Interceptor {
		return func(next http.Handler) http.Handler {
			return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
				order = append(order, name)
				next.ServeHTTP(w, r)
			})
		}
	}
	h := Chain(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		order = append(order, "handler")
	}), layer("auth"), layer("limit"))
	h.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest("GET", "/x", nil))
	if got := strings.Join(order, ","); got != "auth,limit,handler" {
		t.Fatalf("chain order = %s, want auth,limit,handler", got)
	}

	order = nil
	stop := func(next http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			order = append(order, "stop")
			w.WriteHeader(http.StatusTooManyRequests)
		})
	}
	h = Chain(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		order = append(order, "handler")
	}), layer("auth"), stop)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/x", nil))
	if got := strings.Join(order, ","); got != "auth,stop" {
		t.Fatalf("stopped chain order = %s, want auth,stop", got)
	}
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("stopped chain status = %d, want 429", rec.Code)
	}
}

// TestFileStoreCompactsOnLoad: the append log grows with mutations, but a
// reopen replays and compacts it back to a header plus one record per live
// session.
func TestFileStoreCompactsOnLoad(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sessions.json")
	s, err := NewFileSessionStore(path)
	if err != nil {
		t.Fatal(err)
	}
	// Churn: 50 puts, 40 deletes → 90 log records, 10 live sessions.
	for i := 0; i < 50; i++ {
		s.Put(tokenN(i), Session{Identity: Identity{Identifier: "u@x"}})
	}
	for i := 0; i < 40; i++ {
		s.Delete(tokenN(i))
	}
	if err := s.Err(); err != nil {
		t.Fatal(err)
	}
	if lines := countLines(t, path); lines != 1+90 {
		t.Fatalf("log before compaction has %d lines, want 91", lines)
	}

	re, err := NewFileSessionStore(path)
	if err != nil {
		t.Fatal(err)
	}
	if n := re.Count(); n != 10 {
		t.Fatalf("reloaded count = %d, want 10", n)
	}
	if lines := countLines(t, path); lines != 1+10 {
		t.Fatalf("log after compaction has %d lines, want 11", lines)
	}
}

// TestFileStoreMigratesV1Snapshot: a file written by the v1 whole-snapshot
// store loads cleanly and is rewritten as a v2 log.
func TestFileStoreMigratesV1Snapshot(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sessions.json")
	v1 := `{"version":1,"sessions":{"tukey-sess-000001":{"Identity":{"Provider":"shibboleth","Identifier":"alice@uchicago.edu"},"Expires":"0001-01-01T00:00:00Z"}}}`
	if err := os.WriteFile(path, []byte(v1), 0o600); err != nil {
		t.Fatal(err)
	}
	s, err := NewFileSessionStore(path)
	if err != nil {
		t.Fatal(err)
	}
	sess, ok := s.Get("tukey-sess-000001")
	if !ok || sess.Identity.Identifier != "alice@uchicago.edu" {
		t.Fatalf("v1 session not migrated: ok=%v sess=%v", ok, sess)
	}
	// The migrated file is now a v2 log: header line first.
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	first := strings.SplitN(string(raw), "\n", 2)[0]
	if first != `{"version":2}` {
		t.Fatalf("migrated file header = %q, want v2 log header", first)
	}
}

// TestFileStoreExpireRecordReplays: an expiry sweep is one log record, and
// replaying it on load reaps the same sessions.
func TestFileStoreExpireRecordReplays(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sessions.json")
	s, err := NewFileSessionStore(path)
	if err != nil {
		t.Fatal(err)
	}
	t0 := time.Unix(1_350_000_000, 0)
	s.Put("live", Session{Identity: Identity{Identifier: "a@x"}, Expires: t0.Add(time.Hour)})
	s.Put("dead", Session{Identity: Identity{Identifier: "b@x"}, Expires: t0.Add(time.Minute)})
	if n := s.ExpireBefore(t0.Add(30 * time.Minute)); n != 1 {
		t.Fatalf("reaped %d, want 1", n)
	}
	re, err := NewFileSessionStore(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := re.Get("dead"); ok {
		t.Fatal("expired session resurrected by log replay")
	}
	if _, ok := re.Get("live"); !ok {
		t.Fatal("live session lost in log replay")
	}
}

func tokenN(i int) string {
	return "tukey-sess-" + strings.Repeat("0", 3) + string(rune('a'+i/26)) + string(rune('a'+i%26))
}

func countLines(t *testing.T, path string) int {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	n := 0
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		if len(strings.TrimSpace(sc.Text())) > 0 {
			n++
		}
	}
	return n
}
