package mapred

import (
	"fmt"
	"hash/fnv"
	"sort"

	"osdc/internal/sim"
)

// KV is one key/value pair flowing through the framework.
type KV struct {
	Key   string
	Value string
}

// MapFunc processes one input block and emits intermediate pairs. The input
// key is "path:blockSeq"; value is the block's bytes.
type MapFunc func(key string, value []byte, emit func(k, v string))

// ReduceFunc folds all values for one key and emits output pairs.
type ReduceFunc func(key string, values []string, emit func(k, v string))

// Job describes one MapReduce job.
type Job struct {
	Name     string
	Input    []string // HDFS paths
	Map      MapFunc
	Reduce   ReduceFunc
	Reducers int // number of reduce partitions (default 1)
}

// TaskStat describes one executed task for reports.
type TaskStat struct {
	Node    string
	Block   string
	Local   bool // ran on a node holding a replica
	Start   sim.Time
	End     sim.Time
	InBytes int64
}

// Result is a completed job.
type Result struct {
	Job          string
	Output       []KV
	MapTasks     []TaskStat
	Reduces      int
	Started      sim.Time
	Finished     sim.Time
	ShuffleBytes int64
}

// Duration returns the job wall-clock time.
func (r *Result) Duration() sim.Duration { return sim.Duration(r.Finished - r.Started) }

// LocalityFraction returns the share of map tasks that ran data-local —
// the number Hadoop operators watch.
func (r *Result) LocalityFraction() float64 {
	if len(r.MapTasks) == 0 {
		return 0
	}
	local := 0
	for _, t := range r.MapTasks {
		if t.Local {
			local++
		}
	}
	return float64(local) / float64(len(r.MapTasks))
}

// Cluster is a Hadoop-like compute cluster: a JobTracker over TaskTrackers
// co-located with HDFS datanodes.
type Cluster struct {
	Name   string
	HDFS   *HDFS
	engine *sim.Engine
	slots  map[string]int // node -> map slots
	// Throughput model: how fast a map slot streams its input.
	LocalBps  float64 // reading a local replica
	RemoteBps float64 // reading across the rack switch

	JobsRun int64
}

// NewCluster builds a cluster whose TaskTrackers are the HDFS datanodes.
// slotsPerNode is the concurrent map-task capacity per node.
func NewCluster(e *sim.Engine, name string, fs *HDFS, slotsPerNode int) *Cluster {
	if slotsPerNode <= 0 {
		panic("mapred: slotsPerNode must be positive")
	}
	slots := make(map[string]int)
	for _, n := range fs.Nodes() {
		slots[n] = slotsPerNode
	}
	return &Cluster{
		Name: name, HDFS: fs, engine: e, slots: slots,
		LocalBps: 800e6, RemoteBps: 400e6, // 2012 SATA vs oversubscribed ToR
	}
}

// TotalSlots returns the cluster's concurrent map capacity.
func (c *Cluster) TotalSlots() int {
	n := 0
	for _, s := range c.slots {
		n += s
	}
	return n
}

// Run executes a job to completion on the simulation engine and returns its
// result. The engine is advanced internally (Run drives the clock).
func (c *Cluster) Run(job Job) (*Result, error) {
	if job.Map == nil || job.Reduce == nil {
		return nil, fmt.Errorf("mapred: job %q needs Map and Reduce", job.Name)
	}
	if job.Reducers <= 0 {
		job.Reducers = 1
	}
	res := &Result{Job: job.Name, Reduces: job.Reducers, Started: c.engine.Now()}

	// Collect input splits: one map task per block.
	type split struct {
		path  string
		block Block
	}
	var splits []split
	for _, p := range job.Input {
		blocks, err := c.HDFS.Blocks(p)
		if err != nil {
			return nil, err
		}
		for _, b := range blocks {
			splits = append(splits, split{p, b})
		}
	}

	// JobTracker scheduling: greedy wave-by-wave assignment, preferring
	// data-local slots (the Hadoop delay-scheduling outcome). free[node]
	// tracks when each slot frees up; we model each node as slotsPerNode
	// parallel lanes.
	type lane struct {
		node string
		free sim.Time
	}
	var lanes []lane
	nodes := c.HDFS.Nodes()
	for _, n := range nodes {
		for i := 0; i < c.slots[n]; i++ {
			lanes = append(lanes, lane{node: n, free: c.engine.Now()})
		}
	}

	intermediate := make(map[string][]string)
	var mapEnd sim.Time
	for _, sp := range splits {
		// Choose the earliest-free lane, breaking ties toward data-local.
		best := -1
		for i := range lanes {
			if best == -1 {
				best = i
				continue
			}
			li, lb := lanes[i], lanes[best]
			iLocal := hasNode(sp.block.Nodes, li.node)
			bLocal := hasNode(sp.block.Nodes, lb.node)
			switch {
			case li.free < lb.free && (iLocal || !bLocal):
				best = i
			case iLocal && !bLocal && li.free <= lb.free:
				best = i
			}
		}
		ln := &lanes[best]
		local := hasNode(sp.block.Nodes, ln.node)
		bps := c.LocalBps
		if !local {
			bps = c.RemoteBps
		}
		dur := sim.Duration(float64(sp.block.Size*8)/bps) + 0.5 // + JVM start
		start := ln.free
		end := start + sim.Time(dur)
		ln.free = end
		if end > mapEnd {
			mapEnd = end
		}
		res.MapTasks = append(res.MapTasks, TaskStat{
			Node: ln.node, Block: sp.block.ID, Local: local,
			Start: start, End: end, InBytes: sp.block.Size,
		})
		// Execute the user map function for real.
		key := fmt.Sprintf("%s:%d", sp.path, sp.block.Seq)
		job.Map(key, sp.block.Content, func(k, v string) {
			intermediate[k] = append(intermediate[k], v)
			res.ShuffleBytes += int64(len(k) + len(v))
		})
	}

	// Shuffle: partition keys across reducers by hash; reducers start when
	// all maps finish (no slow-start modeling).
	partitions := make([]map[string][]string, job.Reducers)
	for i := range partitions {
		partitions[i] = make(map[string][]string)
	}
	for k, vs := range intermediate {
		h := fnv.New32a()
		h.Write([]byte(k))
		partitions[int(h.Sum32())%job.Reducers][k] = vs
	}

	// Reduce: each partition's time scales with its shuffle volume.
	var out []KV
	var reduceEnd sim.Time = mapEnd
	for _, part := range partitions {
		var bytes int64
		keys := make([]string, 0, len(part))
		for k, vs := range part {
			keys = append(keys, k)
			for _, v := range vs {
				bytes += int64(len(v))
			}
		}
		sort.Strings(keys) // Hadoop sorts keys into reducers
		for _, k := range keys {
			job.Reduce(k, part[k], func(ok, ov string) {
				out = append(out, KV{ok, ov})
			})
		}
		end := mapEnd + sim.Time(float64(bytes*8)/c.RemoteBps+1.0)
		if end > reduceEnd {
			reduceEnd = end
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Key != out[j].Key {
			return out[i].Key < out[j].Key
		}
		return out[i].Value < out[j].Value
	})
	res.Output = out

	// Advance the engine to job completion.
	if reduceEnd > c.engine.Now() {
		c.engine.RunUntil(reduceEnd)
	}
	res.Finished = c.engine.Now()
	c.JobsRun++
	return res, nil
}

func hasNode(nodes []string, n string) bool {
	for _, x := range nodes {
		if x == n {
			return true
		}
	}
	return false
}
