// Package mapred implements the Hadoop-like data clouds of the OSDC (paper
// §3.2, Table 2: OCC-Y with 928 cores and OCC-Matsu with ~120 cores).
//
// It provides HDFS-lite — a block-oriented store with rack-unaware random
// replica placement — and a MapReduce engine with a JobTracker that
// schedules map tasks for data locality, a hash-partitioned shuffle, and
// reduce tasks. Map and reduce functions really execute over the stored
// bytes, and task timing runs on the simulation engine, so both answers and
// durations come out of a run. Project Matsu's flood-detection analytics
// (internal/matsu) run on this engine.
package mapred

import (
	"fmt"
	"sort"

	"osdc/internal/sim"
)

// DefaultBlockSize is the HDFS block size (64 MB, the Hadoop-1.x default).
const DefaultBlockSize = 64 << 20

// DefaultReplication is the HDFS replica count.
const DefaultReplication = 3

// Block is one stored block of a file.
type Block struct {
	ID      string
	Seq     int
	Size    int64
	Nodes   []string // datanodes holding replicas
	Content []byte   // nil for size-only files
}

// HDFS is the block store.
type HDFS struct {
	BlockSize   int64
	Replication int
	nodes       []string
	files       map[string][]Block
	rng         *sim.RNG
	nextBlock   int
}

// NewHDFS creates a filesystem over the given datanodes.
func NewHDFS(e *sim.Engine, nodes []string, blockSize int64, replication int) *HDFS {
	if len(nodes) == 0 {
		panic("mapred: HDFS needs at least one datanode")
	}
	if blockSize <= 0 {
		blockSize = DefaultBlockSize
	}
	if replication <= 0 {
		replication = DefaultReplication
	}
	if replication > len(nodes) {
		replication = len(nodes)
	}
	return &HDFS{
		BlockSize: blockSize, Replication: replication,
		nodes: append([]string(nil), nodes...),
		files: make(map[string][]Block),
		rng:   e.RNG().Fork(),
	}
}

// Nodes returns the datanode names.
func (h *HDFS) Nodes() []string { return append([]string(nil), h.nodes...) }

// place picks Replication distinct nodes at random (HDFS default placement
// without rack awareness).
func (h *HDFS) place() []string {
	perm := h.rng.Perm(len(h.nodes))
	out := make([]string, h.Replication)
	for i := 0; i < h.Replication; i++ {
		out[i] = h.nodes[perm[i]]
	}
	sort.Strings(out)
	return out
}

// Put stores content at path, split into blocks.
func (h *HDFS) Put(path string, content []byte) []Block {
	var blocks []Block
	for off := int64(0); off < int64(len(content)) || (off == 0 && len(content) == 0); off += h.BlockSize {
		hi := off + h.BlockSize
		if hi > int64(len(content)) {
			hi = int64(len(content))
		}
		h.nextBlock++
		blocks = append(blocks, Block{
			ID: fmt.Sprintf("blk_%06d", h.nextBlock), Seq: len(blocks),
			Size: hi - off, Nodes: h.place(),
			Content: append([]byte(nil), content[off:hi]...),
		})
		if len(content) == 0 {
			break
		}
	}
	h.files[path] = blocks
	return blocks
}

// PutMeta stores a size-only file (petabyte-scale accounting).
func (h *HDFS) PutMeta(path string, size int64) []Block {
	var blocks []Block
	for off := int64(0); off < size; off += h.BlockSize {
		n := h.BlockSize
		if off+n > size {
			n = size - off
		}
		h.nextBlock++
		blocks = append(blocks, Block{
			ID: fmt.Sprintf("blk_%06d", h.nextBlock), Seq: len(blocks),
			Size: n, Nodes: h.place(),
		})
	}
	h.files[path] = blocks
	return blocks
}

// Blocks returns a file's blocks in order.
func (h *HDFS) Blocks(path string) ([]Block, error) {
	b, ok := h.files[path]
	if !ok {
		return nil, fmt.Errorf("mapred: no such file %q", path)
	}
	return b, nil
}

// Size returns the file's total bytes.
func (h *HDFS) Size(path string) (int64, error) {
	blocks, err := h.Blocks(path)
	if err != nil {
		return 0, err
	}
	var n int64
	for _, b := range blocks {
		n += b.Size
	}
	return n, nil
}

// List returns paths with the prefix, sorted.
func (h *HDFS) List(prefix string) []string {
	var out []string
	for p := range h.files {
		if len(p) >= len(prefix) && p[:len(prefix)] == prefix {
			out = append(out, p)
		}
	}
	sort.Strings(out)
	return out
}

// UsedBytes returns logical bytes stored.
func (h *HDFS) UsedBytes() int64 {
	var n int64
	for _, blocks := range h.files {
		for _, b := range blocks {
			n += b.Size
		}
	}
	return n
}
