package mapred

import (
	"fmt"
	"strconv"
	"strings"
	"testing"

	"osdc/internal/sim"
)

func testCluster(t *testing.T, nodes, slots int, blockSize int64) (*sim.Engine, *Cluster) {
	t.Helper()
	e := sim.NewEngine(31)
	names := make([]string, nodes)
	for i := range names {
		names[i] = fmt.Sprintf("dn%02d", i)
	}
	fs := NewHDFS(e, names, blockSize, 3)
	return e, NewCluster(e, "occ-y", fs, slots)
}

func wordCount() (MapFunc, ReduceFunc) {
	m := func(key string, value []byte, emit func(k, v string)) {
		for _, w := range strings.Fields(string(value)) {
			emit(w, "1")
		}
	}
	r := func(key string, values []string, emit func(k, v string)) {
		emit(key, strconv.Itoa(len(values)))
	}
	return m, r
}

func TestHDFSBlockSplitting(t *testing.T) {
	e := sim.NewEngine(1)
	fs := NewHDFS(e, []string{"a", "b", "c", "d"}, 100, 3)
	data := make([]byte, 250)
	blocks := fs.Put("/f", data)
	if len(blocks) != 3 {
		t.Fatalf("250 bytes / 100 block = %d blocks, want 3", len(blocks))
	}
	if blocks[2].Size != 50 {
		t.Fatalf("tail block size = %d, want 50", blocks[2].Size)
	}
	size, err := fs.Size("/f")
	if err != nil || size != 250 {
		t.Fatalf("Size = %d, %v", size, err)
	}
}

func TestHDFSReplication(t *testing.T) {
	e := sim.NewEngine(1)
	fs := NewHDFS(e, []string{"a", "b", "c", "d", "e"}, 100, 3)
	blocks := fs.Put("/f", make([]byte, 100))
	if len(blocks[0].Nodes) != 3 {
		t.Fatalf("replicas = %d, want 3", len(blocks[0].Nodes))
	}
	seen := map[string]bool{}
	for _, n := range blocks[0].Nodes {
		if seen[n] {
			t.Fatal("replica placed twice on one node")
		}
		seen[n] = true
	}
}

func TestHDFSReplicationClampedToNodes(t *testing.T) {
	e := sim.NewEngine(1)
	fs := NewHDFS(e, []string{"only"}, 100, 3)
	blocks := fs.Put("/f", make([]byte, 10))
	if len(blocks[0].Nodes) != 1 {
		t.Fatalf("replicas = %d on 1-node cluster, want 1", len(blocks[0].Nodes))
	}
}

func TestHDFSMissingFile(t *testing.T) {
	e := sim.NewEngine(1)
	fs := NewHDFS(e, []string{"a"}, 100, 1)
	if _, err := fs.Blocks("/nope"); err == nil {
		t.Fatal("expected error")
	}
}

func TestWordCountCorrectness(t *testing.T) {
	e, c := testCluster(t, 4, 2, 64)
	_ = e
	c.HDFS.Put("/in/doc1", []byte("flood fire flood"))
	c.HDFS.Put("/in/doc2", []byte("fire fire water"))
	m, r := wordCount()
	res, err := c.Run(Job{Name: "wc", Input: []string{"/in/doc1", "/in/doc2"}, Map: m, Reduce: r, Reducers: 3})
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]string{"flood": "2", "fire": "3", "water": "1"}
	if len(res.Output) != len(want) {
		t.Fatalf("output = %v", res.Output)
	}
	for _, kv := range res.Output {
		if want[kv.Key] != kv.Value {
			t.Fatalf("%s = %s, want %s", kv.Key, kv.Value, want[kv.Key])
		}
	}
}

func TestJobAdvancesClockAndRecordsTasks(t *testing.T) {
	e, c := testCluster(t, 4, 2, 1<<20)
	before := e.Now()
	c.HDFS.Put("/in/x", make([]byte, 5<<20)) // 5 blocks
	m, r := wordCount()
	res, err := c.Run(Job{Name: "j", Input: []string{"/in/x"}, Map: m, Reduce: r})
	if err != nil {
		t.Fatal(err)
	}
	if res.Duration() <= 0 {
		t.Fatal("job took no time")
	}
	if e.Now() <= before {
		t.Fatal("engine clock did not advance")
	}
	if len(res.MapTasks) != 5 {
		t.Fatalf("map tasks = %d, want 5", len(res.MapTasks))
	}
}

func TestDataLocalityPreferred(t *testing.T) {
	// With replication 3 over 8 nodes and free slots everywhere, nearly
	// every map task should be data-local.
	e, c := testCluster(t, 8, 2, 1<<20)
	_ = e
	c.HDFS.Put("/in/big", make([]byte, 40<<20)) // 40 tasks
	m, r := wordCount()
	res, err := c.Run(Job{Name: "loc", Input: []string{"/in/big"}, Map: m, Reduce: r})
	if err != nil {
		t.Fatal(err)
	}
	if lf := res.LocalityFraction(); lf < 0.85 {
		t.Fatalf("locality = %.2f, want ≥0.85", lf)
	}
}

func TestMoreSlotsFasterJob(t *testing.T) {
	run := func(slots int) sim.Duration {
		_, c := testCluster(t, 4, slots, 1<<20)
		c.HDFS.Put("/in/x", make([]byte, 64<<20))
		m, r := wordCount()
		res, err := c.Run(Job{Name: "speed", Input: []string{"/in/x"}, Map: m, Reduce: r})
		if err != nil {
			t.Fatal(err)
		}
		return res.Duration()
	}
	slow := run(1)
	fast := run(4)
	if fast >= slow {
		t.Fatalf("4 slots (%v) not faster than 1 slot (%v)", fast, slow)
	}
}

func TestJobValidation(t *testing.T) {
	_, c := testCluster(t, 2, 1, 100)
	if _, err := c.Run(Job{Name: "bad"}); err == nil {
		t.Fatal("job without Map/Reduce must fail")
	}
	m, r := wordCount()
	if _, err := c.Run(Job{Name: "bad2", Input: []string{"/missing"}, Map: m, Reduce: r}); err == nil {
		t.Fatal("job with missing input must fail")
	}
}

func TestReducerPartitioningCoversAllKeys(t *testing.T) {
	_, c := testCluster(t, 4, 2, 32)
	var doc strings.Builder
	for i := 0; i < 100; i++ {
		fmt.Fprintf(&doc, "k%02d ", i%50)
	}
	c.HDFS.Put("/in/keys", []byte(doc.String()))
	m, r := wordCount()
	res, err := c.Run(Job{Name: "p", Input: []string{"/in/keys"}, Map: m, Reduce: r, Reducers: 7})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Output) != 50 {
		t.Fatalf("keys out = %d, want 50", len(res.Output))
	}
}

func TestOutputDeterministicOrder(t *testing.T) {
	for trial := 0; trial < 2; trial++ {
		_, c := testCluster(t, 4, 2, 64)
		c.HDFS.Put("/in/d", []byte("b a c a b a"))
		m, r := wordCount()
		res, err := c.Run(Job{Name: "det", Input: []string{"/in/d"}, Map: m, Reduce: r, Reducers: 2})
		if err != nil {
			t.Fatal(err)
		}
		if res.Output[0].Key != "a" || res.Output[1].Key != "b" || res.Output[2].Key != "c" {
			t.Fatalf("output order = %v", res.Output)
		}
	}
}

func TestPutMetaAccountsBytes(t *testing.T) {
	e := sim.NewEngine(1)
	fs := NewHDFS(e, []string{"a", "b"}, 64<<20, 2)
	fs.PutMeta("/pub/commoncrawl.warc", 300<<30) // 300 GB
	if got := fs.UsedBytes(); got != 300<<30 {
		t.Fatalf("used = %d", got)
	}
	blocks, _ := fs.Blocks("/pub/commoncrawl.warc")
	if len(blocks) != 4800 {
		t.Fatalf("blocks = %d, want 4800", len(blocks))
	}
}
