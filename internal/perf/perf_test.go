package perf

import (
	"testing"

	_ "osdc/internal/experiments" // console-load for ConsoleLoadP95
)

// TestCollectSnapshot runs the real tracked suite once (a few seconds —
// this is the same work the CI bench step does) and pins the snapshot
// shape plus the two properties the suite exists to track: every entry
// present with a positive measurement, and the pooled-timer churn path
// staying at ≤ 1 alloc per fired event (the seed engine cost 2).
func TestCollectSnapshot(t *testing.T) {
	snap, err := Collect("test")
	if err != nil {
		t.Fatalf("Collect: %v", err)
	}
	if snap.PR != "test" || snap.NumCPU < 1 || snap.GOOS == "" || snap.GOARCH == "" {
		t.Fatalf("snapshot header incomplete: %+v", snap)
	}
	want := []string{
		"engine-churn", "engine-churn-pooled", "sharded-churn",
		"same-tick-batch", "biller-parallel-accrual",
		"usage-sample-sharded-k1", "usage-sample-sharded-k8",
		"usage-sample-incremental-k1", "usage-sample-incremental-k8",
		"instances-by-user-grid100k",
		"telemetry-counter-inc", "telemetry-histogram-observe",
		"telemetry-snapshot-200series",
		"console-load-p95",
		"console-load-p95-grid100k-k1", "console-load-p95-grid100k-k8",
		"console-knee-p95-1024u-1r", "console-knee-p95-1024u-4r",
	}
	byName := map[string]Metric{}
	for _, m := range snap.Metrics {
		byName[m.Name] = m
	}
	for _, name := range want {
		m, ok := byName[name]
		if !ok {
			t.Fatalf("snapshot missing metric %q (have %v)", name, snap.Metrics)
		}
		if m.NsPerOp <= 0 {
			t.Fatalf("%s: non-positive measurement %+v", name, m)
		}
	}
	if len(snap.Metrics) != len(want) {
		t.Fatalf("snapshot has %d metrics, want %d", len(snap.Metrics), len(want))
	}
	if a := byName["engine-churn-pooled"].AllocsPerOp; a > 1 {
		t.Fatalf("pooled churn allocates %d/op, want <= 1", a)
	}
	// The telemetry registry hot paths must stay allocation-free: they sit
	// on every instrumented console request.
	for _, name := range []string{"telemetry-counter-inc", "telemetry-histogram-observe"} {
		if a := byName[name].AllocsPerOp; a != 0 {
			t.Fatalf("%s allocates %d/op, want 0", name, a)
		}
	}
	if byName["console-load-p95"].Unit != "ms" {
		t.Fatalf("console-load-p95 unit = %q, want ms", byName["console-load-p95"].Unit)
	}
	// The incremental counter merge must beat the full scan by at least
	// 10× on the 10⁵-instance grid — the algorithmic O(users) vs
	// O(instances) gap, far larger in practice (~10⁴×), so 10× holds on
	// any box.
	scan, inc := byName["usage-sample-sharded-k1"].NsPerOp, byName["usage-sample-incremental-k1"].NsPerOp
	if inc*10 > scan {
		t.Fatalf("incremental usage sample is only %.1f× the scan (scan %.0f ns, incremental %.0f ns), want >= 10×",
			scan/inc, scan, inc)
	}
}
