// Package perf runs the repo's tracked micro-benchmarks from ordinary
// code — testing.Benchmark instead of `go test -bench` — so cmd/osdc-bench
// can emit machine-readable perf snapshots (the BENCH_<pr>.json files the
// ROADMAP's perf trajectory cites) from one CI step.
//
// The benchmark bodies mirror the _test.go benchmarks they are named
// after (internal/sim/bench_test.go, internal/billing/bench_test.go);
// those stay the canonical `go test -bench` surface, this package is the
// snapshot surface. Keep the two in sync when a workload shape changes.
package perf

import (
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"

	"osdc/internal/billing"
	"osdc/internal/iaas"
	"osdc/internal/scenario"
	"osdc/internal/sim"
	"osdc/internal/telemetry"
)

// gridInstances is the background population the sharded console-load
// snapshot entries run against — the 10⁵-entity grid from the ROADMAP's
// scale goal.
const gridInstances = 100_000

// Metric is one tracked benchmark's snapshot entry.
type Metric struct {
	// Name identifies the benchmark across snapshots (stable key).
	Name string `json:"name"`
	// NsPerOp / AllocsPerOp / BytesPerOp are the usual testing.B
	// per-operation numbers; for scenario-derived entries (console-load
	// p95) NsPerOp carries the metric and the alloc fields are zero.
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	// N is the iteration count the harness settled on (0 for scenario
	// entries) — a sanity check that the run was long enough to trust.
	N int `json:"n,omitempty"`
	// Unit is "ns/op" for benchmarks and the metric's own unit for
	// scenario entries ("ms" for the console p95).
	Unit string `json:"unit"`
}

// Snapshot is the BENCH_<pr>.json wire form.
type Snapshot struct {
	// PR labels which stacked PR the snapshot belongs to (the <pr> in
	// BENCH_<pr>.json).
	PR      string   `json:"pr,omitempty"`
	GOOS    string   `json:"goos"`
	GOARCH  string   `json:"goarch"`
	NumCPU  int      `json:"num_cpu"`
	Metrics []Metric `json:"metrics"`
}

// Collect runs the whole tracked suite and returns the snapshot. The
// console-load entry needs the scenario registry populated (import
// osdc/internal/experiments for side effects, as cmd/osdc-bench does);
// everything else is self-contained.
func Collect(pr string) (Snapshot, error) {
	snap := Snapshot{
		PR:     pr,
		GOOS:   runtime.GOOS,
		GOARCH: runtime.GOARCH,
		NumCPU: runtime.NumCPU(),
	}
	for _, tb := range []struct {
		name string
		body func(*testing.B)
	}{
		{"engine-churn", EngineChurn},
		{"engine-churn-pooled", EngineChurnPooled},
		{"sharded-churn", ShardedChurn},
		{"same-tick-batch", SameTickBatch},
		{"biller-parallel-accrual", BillerParallelAccrual},
		{"usage-sample-sharded-k1", UsageSampleSharded(1)},
		{"usage-sample-sharded-k8", UsageSampleSharded(8)},
		{"usage-sample-incremental-k1", UsageSampleIncremental(1)},
		{"usage-sample-incremental-k8", UsageSampleIncremental(8)},
		{"instances-by-user-grid100k", InstancesByUserGrid()},
		{"telemetry-counter-inc", TelemetryCounterInc},
		{"telemetry-histogram-observe", TelemetryHistogramObserve},
		{"telemetry-snapshot-200series", TelemetrySnapshot},
	} {
		r := testing.Benchmark(tb.body)
		snap.Metrics = append(snap.Metrics, Metric{
			Name:        tb.name,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
			N:           r.N,
			Unit:        "ns/op",
		})
	}
	p95, err := ConsoleLoadP95()
	if err != nil {
		return Snapshot{}, err
	}
	snap.Metrics = append(snap.Metrics, Metric{
		Name:    "console-load-p95",
		NsPerOp: p95,
		Unit:    "ms",
	})
	// The shard-homed headline: console p95 over the 10⁵-instance grid at
	// K=1 vs K=8. The K=8 ≤ K=1 claim only holds on a multi-core runner:
	// on a single-core box (CI today) the goroutine-per-shard advance adds
	// scheduling overhead with no parallelism to harvest, so expect the
	// comparison to invert there and treat these two entries as a
	// trajectory to re-read when CI gets cores.
	for _, k := range []int{1, 8} {
		gp95, err := ShardedConsoleLoadP95(k, gridInstances)
		if err != nil {
			return Snapshot{}, err
		}
		snap.Metrics = append(snap.Metrics, Metric{
			Name:    fmt.Sprintf("console-load-p95-grid100k-k%d", k),
			NsPerOp: gp95,
			Unit:    "ms",
		})
	}
	// The replica-scaling headline: console p95 at the 1024-user knee
	// point served by 1 vs 4 stateless replicas over the shared state
	// plane. On a multi-core runner the 4-replica number should sit at or
	// below the 1-replica one; on a starved runner the extra proxy hop can
	// invert it — which is itself worth tracking.
	for _, replicas := range []int{1, 4} {
		kp95, err := ConsoleKneeP95(1024, replicas)
		if err != nil {
			return Snapshot{}, err
		}
		snap.Metrics = append(snap.Metrics, Metric{
			Name:    fmt.Sprintf("console-knee-p95-1024u-%dr", replicas),
			NsPerOp: kp95,
			Unit:    "ms",
		})
	}
	return snap, nil
}

// EngineChurn is the self-rescheduling cancel-and-replace timer-pool
// workload of BenchmarkEngineChurn: ns/op and allocs/op per fired event.
func EngineChurn(b *testing.B) {
	b.ReportAllocs()
	e := sim.NewEngine(2012)
	rng := sim.NewRNG(7)
	const outstanding = 4096
	handles := make([]sim.Handle, outstanding)
	fired := 0
	var schedule func(slot int) sim.Handle
	schedule = func(slot int) sim.Handle {
		return e.After(rng.Exp(1.0), func() {
			fired++
			if fired >= b.N {
				e.Halt()
				return
			}
			if victim := rng.Intn(outstanding); victim != slot {
				handles[victim].Cancel()
				handles[victim] = schedule(victim)
			}
			handles[slot] = schedule(slot)
		})
	}
	b.ResetTimer()
	for i := range handles {
		handles[i] = schedule(i)
	}
	e.Run()
}

// EngineChurnPooled is the same churn rebuilt on pooled Timers
// (BenchmarkEngineChurnPooled): every reschedule is a Timer.Reset
// reusing the closure allocated at NewTimer.
func EngineChurnPooled(b *testing.B) {
	b.ReportAllocs()
	e := sim.NewEngine(2012)
	rng := sim.NewRNG(7)
	const outstanding = 4096
	timers := make([]*sim.Timer, outstanding)
	fired := 0
	for i := range timers {
		slot := i
		timers[slot] = sim.NewTimer(e, func() {
			fired++
			if fired >= b.N {
				e.Halt()
				return
			}
			if victim := rng.Intn(outstanding); victim != slot {
				timers[victim].Reset(rng.Exp(1.0))
			}
			timers[slot].Reset(rng.Exp(1.0))
		})
	}
	b.ResetTimer()
	for i := range timers {
		timers[i].Reset(rng.Exp(1.0))
	}
	e.Run()
}

// ShardedChurn spreads the pooled churn over an 8-shard ShardSet
// advancing in lockstep RunUntil windows (BenchmarkShardedChurn).
func ShardedChurn(b *testing.B) {
	b.ReportAllocs()
	const k = 8
	const outstanding = 4096
	set := sim.NewShardSet(2012, k)
	perShard := outstanding / k
	quota := b.N/k + 1
	for si := 0; si < k; si++ {
		e := set.ShardAt(si)
		rng := sim.NewRNG(uint64(7 + si))
		timers := make([]*sim.Timer, perShard)
		fired := 0
		for i := range timers {
			slot := i
			timers[slot] = sim.NewTimer(e, func() {
				fired++
				if fired >= quota {
					e.Halt()
					return
				}
				if victim := rng.Intn(perShard); victim != slot {
					timers[victim].Reset(rng.Exp(1.0))
				}
				timers[slot].Reset(rng.Exp(1.0))
			})
		}
		for i := range timers {
			timers[i].Reset(rng.Exp(1.0))
		}
	}
	b.ResetTimer()
	for set.Fired() < uint64(b.N) {
		set.RunFor(64)
	}
}

// SameTickBatch dispatches synchronized-timer ticks — 1024 events per
// timestamp — on a shared engine (BenchmarkSameTickBatch): the shape the
// batched run loop drains with one lock round-trip per tick.
func SameTickBatch(b *testing.B) {
	b.ReportAllocs()
	e := sim.NewEngine(2012)
	e.Share()
	fire := func() {}
	const width = 1024
	b.ResetTimer()
	scheduled := 0
	tick := sim.Time(0)
	for scheduled < b.N {
		tick++
		n := width
		if rest := b.N - scheduled; rest < n {
			n = rest
		}
		for j := 0; j < n; j++ {
			e.At(tick, fire)
		}
		scheduled += n
		// Drain each tick before refilling so the heap stays at tick
		// width and the measurement is dispatch, not heap growth.
		e.Run()
	}
}

// BillerParallelAccrual is the sharded-accumulator contention workload
// of BenchmarkBillerParallelAccrual: parallel workers accruing
// minute-samples and reading usage across a large user population.
func BillerParallelAccrual(b *testing.B) {
	biller := billing.New(sim.NewEngine(1), billing.DefaultRates(), nil, nil)
	const users = 1024
	names := make([]string, users)
	for i := range names {
		names[i] = fmt.Sprintf("user%04d", i)
	}
	var next int64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		// Each worker walks the population from its own offset so workers
		// collide on shards, not on a single user.
		i := int(atomic.AddInt64(&next, 257))
		for pb.Next() {
			name := names[i%users]
			biller.AccrueCoresSample(name, 4)
			_ = biller.CurrentUsage(name)
			i++
		}
	})
}

// benchGrid builds the 10⁵-instance grid population the usage-sampling
// benchmarks poll: one bulk tenant plus a small interactive tenant
// ("alice", a handful of VMs) whose console listing the per-user index
// benchmark measures against the full population.
func benchGrid(b *testing.B, k int) *iaas.Cloud {
	b.Helper()
	const pop = 100_000
	const hostCores = 512
	set := sim.NewShardSet(2012, k)
	c := iaas.NewCloud(set.Anchor(), "bench", "openstack", "bench-site")
	if k > 1 {
		c.SetShards(set)
	}
	for i := 0; i*hostCores < pop+hostCores; i++ {
		c.AddHost(iaas.NewHost(fmt.Sprintf("bench-%03d", i), hostCores, hostCores*4096, hostCores*100))
	}
	c.SetQuota("grid", iaas.Quota{MaxInstances: pop + 1, MaxCores: pop + 1})
	for i := 0; i < pop; i++ {
		if _, err := c.Launch("grid", fmt.Sprintf("bg-%06d", i), "m1.small", ""); err != nil {
			b.Fatal(err)
		}
	}
	c.SetQuota("alice", iaas.Quota{MaxInstances: 8, MaxCores: 32})
	for i := 0; i < 5; i++ {
		if _, err := c.Launch("alice", fmt.Sprintf("alice-%02d", i), "m1.small", ""); err != nil {
			b.Fatal(err)
		}
	}
	return c
}

// UsageSampleSharded returns a benchmark body measuring one usage-monitor
// sampling sweep as a full instance walk (RunningByUserScan) over the
// grid with the records bucketed across k shards. Since PR 9 this is the
// *baseline* the incremental counters are read against: the body is the
// pre-counter RunningByUser verbatim, so the usage-sample-sharded-k*
// series stays continuous across snapshots.
func UsageSampleSharded(k int) func(*testing.B) {
	return func(b *testing.B) {
		b.ReportAllocs()
		c := benchGrid(b, k)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			_ = c.RunningByUserScan()
		}
	}
}

// UsageSampleIncremental returns a benchmark body measuring the same
// sampling sweep through the per-shard per-user counters — the
// RunningByUser the pollers actually call now: a merge of K tiny account
// maps, O(active users) instead of O(population).
func UsageSampleIncremental(k int) func(*testing.B) {
	return func(b *testing.B) {
		b.ReportAllocs()
		c := benchGrid(b, k)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			_ = c.RunningByUser()
		}
	}
}

// InstancesByUserGrid measures one console listing for a small tenant
// against the 10⁵-instance background: the per-user index touches only
// that tenant's records, where the pre-index walk scanned every bucket
// entry on the cloud.
func InstancesByUserGrid() func(*testing.B) {
	return func(b *testing.B) {
		b.ReportAllocs()
		c := benchGrid(b, 8)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			_ = c.Instances("alice")
		}
	}
}

// TelemetryCounterInc is the telemetry registry's hot path — the counter
// every instrumented handler bumps per request (BenchmarkCounterInc): one
// atomic add, zero allocations. The 0-alloc invariant is what lets the
// plane sit on the console's request path without touching its p95.
func TelemetryCounterInc(b *testing.B) {
	b.ReportAllocs()
	reg := telemetry.NewRegistry()
	c := reg.Counter("bench_total", "bench", telemetry.Label{Key: "route", Value: "GET /bench"})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

// TelemetryHistogramObserve tracks the latency-observation path
// (BenchmarkHistogramObserve): one bucket walk plus three atomics.
func TelemetryHistogramObserve(b *testing.B) {
	b.ReportAllocs()
	reg := telemetry.NewRegistry()
	h := reg.Histogram("bench_seconds", "bench", telemetry.LatencyBuckets)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Observe(0.003)
	}
}

// TelemetrySnapshot measures one Snapshot() sweep over a 200-series
// registry — the cold path the streamer walks once per frame and the
// exposition handler walks once per scrape.
func TelemetrySnapshot(b *testing.B) {
	b.ReportAllocs()
	reg := telemetry.NewRegistry()
	for i := 0; i < 200; i++ {
		reg.Counter(fmt.Sprintf("bench_series_%03d_total", i), "bench",
			telemetry.Label{Key: "shard", Value: fmt.Sprint(i % 8)}).Add(int64(i))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = reg.Snapshot()
	}
}

// ShardedConsoleLoadP95 runs console-load over the bg-instance grid on a
// k-shard kernel and returns its live p95 in milliseconds.
func ShardedConsoleLoadP95(k, bgInstances int) (float64, error) {
	s, ok := scenario.Get("console-load")
	if !ok {
		return 0, fmt.Errorf("perf: console-load scenario not registered (import osdc/internal/experiments)")
	}
	p, ok := s.(scenario.Parametric)
	if !ok {
		return 0, fmt.Errorf("perf: console-load is not parametric")
	}
	point, err := p.With(map[string]float64{
		"shards": float64(k), "bg-instances": float64(bgInstances)})
	if err != nil {
		return 0, err
	}
	res, err := point.Run(2012)
	if err != nil {
		return 0, fmt.Errorf("perf: sharded console-load: %w", err)
	}
	p95, ok := res.Metrics["live-p95-ms"]
	if !ok {
		return 0, fmt.Errorf("perf: sharded console-load reported no live-p95-ms metric")
	}
	return p95, nil
}

// ConsoleLoadP95 runs the console-load scenario once at the golden seed
// and returns its live-p95-ms metric — the one latency number in the
// snapshot that exercises real HTTP handlers instead of the sim kernel.
func ConsoleLoadP95() (float64, error) {
	s, ok := scenario.Get("console-load")
	if !ok {
		return 0, fmt.Errorf("perf: console-load scenario not registered (import osdc/internal/experiments)")
	}
	res, err := s.Run(2012)
	if err != nil {
		return 0, fmt.Errorf("perf: console-load: %w", err)
	}
	p95, ok := res.Metrics["live-p95-ms"]
	if !ok {
		return 0, fmt.Errorf("perf: console-load reported no live-p95-ms metric")
	}
	return p95, nil
}

// ConsoleKneeP95 runs one console-knee grid point — users researchers
// against replicas stateless console replicas behind tukey-lb — and
// returns its live p95 in milliseconds.
func ConsoleKneeP95(users, replicas int) (float64, error) {
	s, ok := scenario.Get("console-knee")
	if !ok {
		return 0, fmt.Errorf("perf: console-knee scenario not registered (import osdc/internal/experiments)")
	}
	p, ok := s.(scenario.Parametric)
	if !ok {
		return 0, fmt.Errorf("perf: console-knee is not parametric")
	}
	point, err := p.With(map[string]float64{"users": float64(users), "replicas": float64(replicas)})
	if err != nil {
		return 0, err
	}
	res, err := point.Run(2012)
	if err != nil {
		return 0, fmt.Errorf("perf: console-knee: %w", err)
	}
	key := fmt.Sprintf("live-p95-ms[%d-users,%d-replicas]", users, replicas)
	p95, ok := res.Metrics[key]
	if !ok {
		return 0, fmt.Errorf("perf: console-knee reported no %s metric", key)
	}
	return p95, nil
}
