// Package datasets implements the OSDC public-dataset catalog (paper §4,
// §6.3): curator-managed dataset records with metadata, published online so
// users can browse and search them, with the bytes living on a GlusterFS
// share and every dataset carrying a persistent ARK identifier.
package datasets

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"osdc/internal/ark"
	"osdc/internal/dfs"
)

// Dataset is one catalog entry.
type Dataset struct {
	Name       string
	Discipline string // "biology", "earth science", ...
	SizeBytes  int64
	ARK        string
	Curator    string
	Desc       string
	Tags       []string
	Path       string // location on the storage volume
	Public     bool
}

// Catalog is the curated dataset registry.
//
// The console searches the catalog from concurrent HTTP handlers while
// curators publish; mu covers the curator set and the entry table. The
// download counter is atomic so Download stays a read-lock path — the
// datastore coordinator embeds the catalog and reads it from every
// planning round, and a write-locked counter on the hot resolve path
// would serialize those reads against every console search. A *Dataset
// is immutable once published, so handing pointers out of Search/Get/All
// without copying is safe.
type Catalog struct {
	ids *ark.Service
	vol *dfs.Volume

	mu       sync.RWMutex
	curators map[string]bool
	entries  map[string]*Dataset

	downloads int64 // atomic
}

// NewCatalog builds a catalog that publishes onto vol and mints IDs from
// ids.
func NewCatalog(ids *ark.Service, vol *dfs.Volume) *Catalog {
	return &Catalog{
		ids: ids, vol: vol,
		curators: make(map[string]bool),
		entries:  make(map[string]*Dataset),
	}
}

// AddCurator authorizes a data curator (§3.2: "use a community of users and
// data curators to identify data to add").
func (c *Catalog) AddCurator(name string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.curators[name] = true
}

// Publish registers a dataset: only curators may publish; the bytes are
// accounted on the storage volume and an ARK is minted and bound.
func (c *Catalog) Publish(curator string, d Dataset) (*Dataset, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.curators[curator] {
		return nil, fmt.Errorf("datasets: %s is not a curator", curator)
	}
	if d.Name == "" || d.SizeBytes <= 0 {
		return nil, fmt.Errorf("datasets: dataset needs a name and positive size")
	}
	if _, ok := c.entries[d.Name]; ok {
		return nil, fmt.Errorf("datasets: %q already published", d.Name)
	}
	cp := d
	cp.Curator = curator
	if cp.Path == "" {
		cp.Path = "/glusterfs/public/" + strings.ToLower(strings.ReplaceAll(d.Name, " ", "-"))
	}
	if err := c.vol.WriteMeta(cp.Path, cp.SizeBytes); err != nil {
		return nil, fmt.Errorf("datasets: storing %s: %w", d.Name, err)
	}
	rec := c.ids.Mint(ark.Metadata{
		Who: curator, What: d.Name, When: "2012", Where: cp.Path,
		Extra: map[string]string{"discipline": d.Discipline, "size": fmt.Sprint(d.SizeBytes)},
	})
	cp.ARK = rec.ARK
	c.entries[cp.Name] = &cp
	return &cp, nil
}

// Get looks a dataset up by exact name.
func (c *Catalog) Get(name string) (*Dataset, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	d, ok := c.entries[name]
	return d, ok
}

// Search returns datasets whose name, description, discipline or tags
// contain the query (case-insensitive), sorted by name.
func (c *Catalog) Search(query string) []*Dataset {
	c.mu.RLock()
	defer c.mu.RUnlock()
	q := strings.ToLower(query)
	var out []*Dataset
	for _, d := range c.entries {
		hay := strings.ToLower(d.Name + " " + d.Desc + " " + d.Discipline + " " + strings.Join(d.Tags, " "))
		if strings.Contains(hay, q) {
			out = append(out, d)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// All returns every entry sorted by name.
func (c *Catalog) All() []*Dataset { return c.Search("") }

// TotalBytes sums the published dataset sizes.
func (c *Catalog) TotalBytes() int64 {
	c.mu.RLock()
	defer c.mu.RUnlock()
	var n int64
	for _, d := range c.entries {
		n += d.SizeBytes
	}
	return n
}

// ByDiscipline groups sizes per discipline for the §4 breakdown.
func (c *Catalog) ByDiscipline() map[string]int64 {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make(map[string]int64)
	for _, d := range c.entries {
		out[d.Discipline] += d.SizeBytes
	}
	return out
}

// Download records an access (freely downloadable by anyone, §1) and
// resolves the dataset's location.
func (c *Catalog) Download(name string) (string, error) {
	c.mu.RLock()
	d, ok := c.entries[name]
	c.mu.RUnlock()
	if !ok {
		return "", fmt.Errorf("datasets: no dataset %q", name)
	}
	atomic.AddInt64(&c.downloads, 1)
	return c.ids.Resolve(d.ARK)
}

// DownloadCount reports how many downloads the catalog has recorded.
func (c *Catalog) DownloadCount() int64 { return atomic.LoadInt64(&c.downloads) }

const (
	tb = int64(1) << 40
	gb = int64(1) << 30
)

// PaperDatasets returns the public datasets §4 names, with sizes chosen to
// match the paper's aggregate claims: >400 TB biology, ~30 TB EO-1, >600 TB
// total public data.
func PaperDatasets() []Dataset {
	return []Dataset{
		{Name: "1000 Genomes", Discipline: "biology", SizeBytes: 260 * tb, Desc: "human genetic variation reference", Tags: []string{"genomics"}},
		{Name: "NCBI Collections", Discipline: "biology", SizeBytes: 90 * tb, Desc: "datasets available from NIH's NCBI", Tags: []string{"genomics"}},
		{Name: "Protein Data Bank", Discipline: "biology", SizeBytes: 2 * tb, Desc: "3D protein structures", Tags: []string{"structural biology"}},
		{Name: "modENCODE", Discipline: "biology", SizeBytes: 45 * tb, Desc: "model organism encyclopedia of DNA elements", Tags: []string{"genomics", "backup"}},
		{Name: "ENCODE", Discipline: "biology", SizeBytes: 20 * tb, Desc: "encyclopedia of DNA elements (backup site)", Tags: []string{"genomics", "backup"}},
		{Name: "EO-1 ALI and Hyperion", Discipline: "earth science", SizeBytes: 30 * tb, Desc: "three years of NASA EO-1 satellite imagery", Tags: []string{"matsu", "satellite"}},
		{Name: "Sloan Digital Sky Survey", Discipline: "astronomy", SizeBytes: 60 * tb, Desc: "SDSS imaging and spectra (backup)", Tags: []string{"backup"}},
		{Name: "Common Crawl", Discipline: "information science", SizeBytes: 80 * tb, Desc: "open web crawl corpus", Tags: []string{"web"}},
		{Name: "Enron Email", Discipline: "information science", SizeBytes: 1 * tb, Desc: "the Enron corpus", Tags: []string{"text"}},
		{Name: "City of Chicago Data", Discipline: "information science", SizeBytes: 2 * tb, Desc: "municipal open data", Tags: []string{"civic"}},
		{Name: "US Census", Discipline: "social science", SizeBytes: 6 * tb, Desc: "decennial census tables", Tags: []string{"census"}},
		{Name: "Current Population Survey", Discipline: "social science", SizeBytes: 2 * tb, Desc: "CPS microdata", Tags: []string{"survey"}},
		{Name: "General Social Survey", Discipline: "social science", SizeBytes: 1 * tb, Desc: "GSS attitudes survey", Tags: []string{"survey"}},
		{Name: "ICPSR Collections", Discipline: "social science", SizeBytes: 8 * tb, Desc: "inter-university consortium for political and social research", Tags: []string{"survey"}},
		{Name: "Bookworm ngrams", Discipline: "digital humanities", SizeBytes: 4 * tb, Desc: "ngrams from public-domain books with library metadata", Tags: []string{"culturomics"}},
		{Name: "Focused Crawls", Discipline: "information science", SizeBytes: 10 * tb, Desc: "results of focused web crawls", Tags: []string{"web"}},
	}
}
