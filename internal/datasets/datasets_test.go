package datasets

import (
	"strings"
	"sync"
	"testing"

	"osdc/internal/ark"
	"osdc/internal/dfs"
	"osdc/internal/sim"
	"osdc/internal/simdisk"
)

func newCatalog(t *testing.T) *Catalog {
	t.Helper()
	e := sim.NewEngine(3)
	var bricks []*dfs.Brick
	for i := 0; i < 2; i++ {
		d := simdisk.New(e, "d", 3072e6, 1136e6, 2<<50)
		bricks = append(bricks, dfs.NewBrick("b", "n", d))
	}
	// unique names required per volume; adjust
	bricks[0].Name, bricks[1].Name = "b0", "b1"
	vol, err := dfs.NewVolume(e, "osdc-root", 1, dfs.Version33, bricks)
	if err != nil {
		t.Fatal(err)
	}
	c := NewCatalog(ark.NewService(""), vol)
	c.AddCurator("walt")
	return c
}

func TestPublishMintsARKAndStores(t *testing.T) {
	c := newCatalog(t)
	d, err := c.Publish("walt", Dataset{Name: "Test Set", Discipline: "biology", SizeBytes: 1 << 40, Public: true})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(d.ARK, "ark:/") {
		t.Fatalf("no ARK minted: %q", d.ARK)
	}
	loc, err := c.Download("Test Set")
	if err != nil {
		t.Fatal(err)
	}
	if loc != d.Path {
		t.Fatalf("download resolves to %q, want %q", loc, d.Path)
	}
	if c.DownloadCount() != 1 {
		t.Fatal("download not counted")
	}
}

// TestCatalogConcurrentDownloadAndSearch is the -race stress for the
// catalog's locking: Download used to mutate the counter under the same
// lock handlers read with, and the datastore coordinator now embeds the
// catalog, reading it from planning rounds while the console searches and
// downloads. Exact counting is asserted so lost atomic updates surface
// even without -race.
func TestCatalogConcurrentDownloadAndSearch(t *testing.T) {
	c := newCatalog(t)
	if _, err := c.Publish("walt", Dataset{Name: "Stress Set", SizeBytes: 1 << 30, Discipline: "biology"}); err != nil {
		t.Fatal(err)
	}
	const workers, iters = 8, 200
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				if _, err := c.Download("Stress Set"); err != nil {
					t.Error(err)
					return
				}
				if got := c.Search("biology"); len(got) == 0 {
					t.Error("search lost the published dataset")
					return
				}
				c.All()
				c.TotalBytes()
				c.DownloadCount()
			}
		}()
	}
	wg.Wait()
	if got := c.DownloadCount(); got != workers*iters {
		t.Fatalf("DownloadCount = %d, want %d", got, workers*iters)
	}
}

func TestOnlyCuratorsPublish(t *testing.T) {
	c := newCatalog(t)
	if _, err := c.Publish("randomuser", Dataset{Name: "X", SizeBytes: 1}); err == nil {
		t.Fatal("non-curator published")
	}
}

func TestDuplicateRejected(t *testing.T) {
	c := newCatalog(t)
	if _, err := c.Publish("walt", Dataset{Name: "Dup", SizeBytes: 1, Discipline: "x"}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Publish("walt", Dataset{Name: "Dup", SizeBytes: 1, Discipline: "x"}); err == nil {
		t.Fatal("duplicate accepted")
	}
}

func TestValidation(t *testing.T) {
	c := newCatalog(t)
	if _, err := c.Publish("walt", Dataset{Name: "", SizeBytes: 5}); err == nil {
		t.Fatal("empty name accepted")
	}
	if _, err := c.Publish("walt", Dataset{Name: "Zero", SizeBytes: 0}); err == nil {
		t.Fatal("zero size accepted")
	}
}

func TestSearch(t *testing.T) {
	c := newCatalog(t)
	for _, d := range PaperDatasets() {
		if _, err := c.Publish("walt", d); err != nil {
			t.Fatal(err)
		}
	}
	hits := c.Search("genom")
	if len(hits) < 2 {
		t.Fatalf("search 'genom' found %d, want ≥2 (1000 Genomes, NCBI/modENCODE tags)", len(hits))
	}
	if got := c.Search("hyperion"); len(got) != 0 {
		// Desc says "EO-1 satellite imagery"; hyperion is in the name only.
		for _, d := range got {
			if !strings.Contains(strings.ToLower(d.Name), "hyperion") {
				t.Fatalf("bogus hit %q", d.Name)
			}
		}
	}
	if len(c.Search("")) != len(PaperDatasets()) {
		t.Fatal("empty query must return all")
	}
}

func TestPaperAggregates(t *testing.T) {
	c := newCatalog(t)
	for _, d := range PaperDatasets() {
		if _, err := c.Publish("walt", d); err != nil {
			t.Fatal(err)
		}
	}
	const tb = int64(1) << 40
	// §6.3: more than 600 TB of public datasets.
	if total := c.TotalBytes(); total < 600*tb || total > 700*tb {
		t.Fatalf("total = %d TB, want 600–700 TB", total/tb)
	}
	// §4.1: over 400 TB for the biological sciences.
	byD := c.ByDiscipline()
	if byD["biology"] < 400*tb {
		t.Fatalf("biology = %d TB, want >400 TB", byD["biology"]/tb)
	}
	// §4.2: ~30 TB of EO-1 data.
	eo1, ok := c.Get("EO-1 ALI and Hyperion")
	if !ok || eo1.SizeBytes != 30*tb {
		t.Fatal("EO-1 dataset wrong")
	}
}

func TestDownloadUnknown(t *testing.T) {
	c := newCatalog(t)
	if _, err := c.Download("nope"); err == nil {
		t.Fatal("unknown dataset downloadable")
	}
}
