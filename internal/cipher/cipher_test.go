package cipher

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestXTEAKnownRoundTrip(t *testing.T) {
	key := make([]byte, 16)
	for i := range key {
		key[i] = byte(i)
	}
	x, err := NewXTEA(key)
	if err != nil {
		t.Fatal(err)
	}
	src := []byte{1, 2, 3, 4, 5, 6, 7, 8}
	enc := make([]byte, 8)
	dec := make([]byte, 8)
	x.Encrypt(enc, src)
	if bytes.Equal(enc, src) {
		t.Fatal("encryption is identity")
	}
	x.Decrypt(dec, enc)
	if !bytes.Equal(dec, src) {
		t.Fatalf("decrypt(encrypt(x)) = %v, want %v", dec, src)
	}
}

func TestXTEARoundTripProperty(t *testing.T) {
	if err := quick.Check(func(key [16]byte, block [8]byte) bool {
		x, err := NewXTEA(key[:])
		if err != nil {
			return false
		}
		enc := make([]byte, 8)
		dec := make([]byte, 8)
		x.Encrypt(enc, block[:])
		x.Decrypt(dec, enc)
		return bytes.Equal(dec, block[:])
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestXTEAKeySensitivity(t *testing.T) {
	k1 := make([]byte, 16)
	k2 := make([]byte, 16)
	k2[0] = 1
	x1, _ := NewXTEA(k1)
	x2, _ := NewXTEA(k2)
	src := []byte("8bytes!!")
	e1 := make([]byte, 8)
	e2 := make([]byte, 8)
	x1.Encrypt(e1, src)
	x2.Encrypt(e2, src)
	if bytes.Equal(e1, e2) {
		t.Fatal("different keys produced identical ciphertext")
	}
}

func TestXTEABadKeyLength(t *testing.T) {
	if _, err := NewXTEA(make([]byte, 15)); err == nil {
		t.Fatal("expected error for 15-byte key")
	}
}

func TestStreamRoundTripAllCiphers(t *testing.T) {
	msg := []byte("The Open Science Data Cloud moves terabytes between Chicago and Livermore.")
	for _, name := range []Name{None, Blowfish, TripleDES} {
		enc, err := NewStream(name, []byte("key"), []byte("iv"))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		dec, err := NewStream(name, []byte("key"), []byte("iv"))
		if err != nil {
			t.Fatal(err)
		}
		ct := make([]byte, len(msg))
		enc.Process(ct, msg)
		if name != None && bytes.Equal(ct, msg) {
			t.Fatalf("%s: ciphertext equals plaintext", name)
		}
		pt := make([]byte, len(ct))
		dec.Process(pt, ct)
		if !bytes.Equal(pt, msg) {
			t.Fatalf("%s: round trip failed", name)
		}
		if enc.Name() != name {
			t.Fatalf("Name() = %q, want %q", enc.Name(), name)
		}
	}
}

func TestStreamDifferentKeysDiffer(t *testing.T) {
	msg := make([]byte, 64)
	a, _ := NewStream(Blowfish, []byte("alpha"), []byte("iv"))
	b, _ := NewStream(Blowfish, []byte("beta"), []byte("iv"))
	ca := make([]byte, 64)
	cb := make([]byte, 64)
	a.Process(ca, msg)
	b.Process(cb, msg)
	if bytes.Equal(ca, cb) {
		t.Fatal("different keys gave identical keystreams")
	}
}

func TestStreamInPlace(t *testing.T) {
	msg := []byte("in-place encryption buffer")
	orig := append([]byte(nil), msg...)
	enc, _ := NewStream(TripleDES, []byte("k"), []byte("i"))
	dec, _ := NewStream(TripleDES, []byte("k"), []byte("i"))
	enc.Process(msg, msg)
	if bytes.Equal(msg, orig) {
		t.Fatal("in-place encryption did nothing")
	}
	dec.Process(msg, msg)
	if !bytes.Equal(msg, orig) {
		t.Fatal("in-place round trip failed")
	}
}

func TestUnknownCipher(t *testing.T) {
	if _, err := NewStream("rot13", nil, nil); err == nil {
		t.Fatal("expected error for unknown cipher")
	}
}

func TestThroughputShapes(t *testing.T) {
	if ThroughputBps(None, ImplUDR) != 0 {
		t.Fatal("plaintext must be uncapped")
	}
	bfUDR := ThroughputBps(Blowfish, ImplUDR)
	desSSH := ThroughputBps(TripleDES, ImplSSH)
	if bfUDR <= desSSH {
		t.Fatal("blowfish-class must be faster than 3des-class")
	}
	// The UDR blowfish cap is what produces Table 3's ~394 Mbit/s row.
	if bfUDR < 380e6 || bfUDR > 410e6 {
		t.Fatalf("UDR blowfish cap = %v, want ~396 Mbit/s", bfUDR)
	}
}

func TestStretchDeterministicAndSized(t *testing.T) {
	a := stretch([]byte("abc"), 24)
	b := stretch([]byte("abc"), 24)
	if !bytes.Equal(a, b) {
		t.Fatal("stretch not deterministic")
	}
	if len(a) != 24 {
		t.Fatalf("len = %d, want 24", len(a))
	}
	if len(stretch(nil, 8)) != 8 {
		t.Fatal("stretch(nil) wrong size")
	}
}
