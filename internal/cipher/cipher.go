// Package cipher provides the encryption layers used in the paper's
// Table 3 transfer experiments: none, "blowfish" and 3des.
//
// Two aspects matter for the reproduction:
//
//  1. Correctness — data must round-trip through a real cipher. 3DES comes
//     from the standard library. Blowfish is not in the standard library
//     and its S-boxes (4 KB of hexadecimal π) cannot be reproduced from
//     first principles offline, so XTEA — a real 64-bit-block cipher with
//     trivially-derivable constants — stands in for it. Both run in CTR
//     mode so they behave as stream ciphers, like the transports use them.
//  2. Throughput — on 2012-era hardware single-threaded cipher speed is
//     what capped encrypted transfers. The Profile table records the
//     bits-per-second each (cipher, implementation) pair sustains, which
//     the transfer simulations consume as pipeline caps.
package cipher

import (
	stdcipher "crypto/cipher"
	"crypto/des"
	"encoding/binary"
	"fmt"
)

// Name identifies a cipher choice on the UDR/rsync command line.
type Name string

// The cipher names from Table 3.
const (
	None      Name = "none"
	Blowfish  Name = "blowfish" // implemented by XTEA-CTR, see package doc
	TripleDES Name = "3des"
)

// Stream encrypts or decrypts a byte stream in place-compatible fashion
// (CTR mode: the same transform both directions).
type Stream interface {
	// Name returns the cipher's configured name.
	Name() Name
	// Process applies the keystream: dst[i] = src[i] XOR ks[i]. dst and src
	// may alias. len(dst) must be >= len(src).
	Process(dst, src []byte)
}

// NewStream builds a stream for the named cipher. key material is stretched
// or truncated to the cipher's key size; iv seeds the CTR counter.
func NewStream(name Name, key, iv []byte) (Stream, error) {
	switch name {
	case None:
		return noneStream{}, nil
	case Blowfish:
		b, err := NewXTEA(stretch(key, 16))
		if err != nil {
			return nil, err
		}
		return &ctrStream{name: Blowfish, ctr: stdcipher.NewCTR(b, stretch(iv, b.BlockSize()))}, nil
	case TripleDES:
		b, err := des.NewTripleDESCipher(stretch(key, 24))
		if err != nil {
			return nil, err
		}
		return &ctrStream{name: TripleDES, ctr: stdcipher.NewCTR(b, stretch(iv, b.BlockSize()))}, nil
	default:
		return nil, fmt.Errorf("cipher: unknown cipher %q", name)
	}
}

// stretch repeats or truncates b to exactly n bytes (never all-zero).
func stretch(b []byte, n int) []byte {
	out := make([]byte, n)
	if len(b) == 0 {
		b = []byte{0x5a}
	}
	for i := range out {
		out[i] = b[i%len(b)] ^ byte(i*131)
	}
	return out
}

type noneStream struct{}

func (noneStream) Name() Name { return None }
func (noneStream) Process(dst, src []byte) {
	if &dst[0] != &src[0] {
		copy(dst, src)
	}
}

type ctrStream struct {
	name Name
	ctr  stdcipher.Stream
}

func (c *ctrStream) Name() Name { return c.name }
func (c *ctrStream) Process(dst, src []byte) {
	c.ctr.XORKeyStream(dst, src)
}

// XTEA is the 64-round XTEA block cipher (Needham & Wheeler). 8-byte block,
// 16-byte key. It implements crypto/cipher.Block.
type XTEA struct {
	k [4]uint32
}

const xteaDelta = 0x9E3779B9
const xteaRounds = 32 // 32 cycles = 64 Feistel rounds

// NewXTEA returns an XTEA block cipher with a 16-byte key.
func NewXTEA(key []byte) (*XTEA, error) {
	if len(key) != 16 {
		return nil, fmt.Errorf("cipher: XTEA key must be 16 bytes, got %d", len(key))
	}
	var x XTEA
	for i := 0; i < 4; i++ {
		x.k[i] = binary.BigEndian.Uint32(key[i*4:])
	}
	return &x, nil
}

// BlockSize implements cipher.Block.
func (x *XTEA) BlockSize() int { return 8 }

// Encrypt implements cipher.Block.
func (x *XTEA) Encrypt(dst, src []byte) {
	v0 := binary.BigEndian.Uint32(src[0:])
	v1 := binary.BigEndian.Uint32(src[4:])
	var sum uint32
	for i := 0; i < xteaRounds; i++ {
		v0 += (((v1 << 4) ^ (v1 >> 5)) + v1) ^ (sum + x.k[sum&3])
		sum += xteaDelta
		v1 += (((v0 << 4) ^ (v0 >> 5)) + v0) ^ (sum + x.k[(sum>>11)&3])
	}
	binary.BigEndian.PutUint32(dst[0:], v0)
	binary.BigEndian.PutUint32(dst[4:], v1)
}

// Decrypt implements cipher.Block.
func (x *XTEA) Decrypt(dst, src []byte) {
	v0 := binary.BigEndian.Uint32(src[0:])
	v1 := binary.BigEndian.Uint32(src[4:])
	sum := uint32(0xC6EF3720) // xteaDelta × xteaRounds mod 2³²
	for i := 0; i < xteaRounds; i++ {
		v1 -= (((v0 << 4) ^ (v0 >> 5)) + v0) ^ (sum + x.k[(sum>>11)&3])
		sum -= xteaDelta
		v0 -= (((v1 << 4) ^ (v1 >> 5)) + v1) ^ (sum + x.k[sum&3])
	}
	binary.BigEndian.PutUint32(dst[0:], v0)
	binary.BigEndian.PutUint32(dst[4:], v1)
}

// Impl identifies which program's cipher implementation is running; their
// measured speeds differed (UDR linked a tuned Blowfish; ssh's 3des was the
// slow OpenSSL path).
type Impl string

// Implementations appearing in Table 3.
const (
	ImplUDR Impl = "udr"
	ImplSSH Impl = "ssh" // rsync tunnels over ssh when encrypting
)

// ThroughputBps returns the sustained single-threaded cipher throughput in
// bits/s for the (cipher, impl) pair on the paper's 2012-era hardware.
// 0 means unlimited (no cipher stage). These are calibration constants; the
// shapes they encode are: Blowfish-class ciphers run ~400 Mbit/s per core,
// 3des-class ~300 Mbit/s, and plaintext is free.
func ThroughputBps(name Name, impl Impl) float64 {
	switch {
	case name == None:
		return 0
	case name == Blowfish && impl == ImplUDR:
		return 396e6
	case name == Blowfish && impl == ImplSSH:
		return 430e6
	case name == TripleDES && impl == ImplSSH:
		return 310e6
	case name == TripleDES && impl == ImplUDR:
		return 300e6
	default:
		return 350e6
	}
}
