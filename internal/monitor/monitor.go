// Package monitor implements the OSDC's two monitoring systems (paper
// §7.4):
//
//  1. A Nagios-like system/network monitor: a master server asks NRPE-like
//     agents on remote hosts to run checks; binary plugins compare values
//     against Warning and Critical thresholds; threshold crossings raise
//     alerts to the system administrators.
//  2. An in-house cloud-usage monitor whose high-level summary is published
//     on the OSDC website (instances per user, cloud status).
package monitor

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"osdc/internal/cloudapi"
	"osdc/internal/fanout"
	"osdc/internal/sim"
)

// pollWorkers bounds the monitoring fan-out (master agent sweeps and
// usage-monitor samples) — the same worker count the ClockCoordinator
// pushes with.
const pollWorkers = 8

// pollDeadline is the wall budget one agent sweep or cloud sample gets
// before the poll abandons the wait (half the Remote transport's own
// timeout). Abandoned polls surface in the error counters; late results
// are discarded.
const pollDeadline = cloudapi.DefaultTimeout / 2

// State is a Nagios check state.
type State int

// Nagios states.
const (
	StateOK State = iota
	StateWarning
	StateCritical
	StateUnknown
)

func (s State) String() string {
	switch s {
	case StateOK:
		return "OK"
	case StateWarning:
		return "WARNING"
	case StateCritical:
		return "CRITICAL"
	default:
		return "UNKNOWN"
	}
}

// Check is one configured service check: a plugin measuring a value with
// Warning/Critical thresholds (crossed when the value is ≥ threshold).
type Check struct {
	Name   string
	Plugin func() (float64, error)
	Warn   float64
	Crit   float64
}

// Evaluate runs the plugin and classifies the result.
func (c Check) Evaluate() (State, float64) {
	v, err := c.Plugin()
	if err != nil {
		return StateUnknown, 0
	}
	switch {
	case v >= c.Crit:
		return StateCritical, v
	case v >= c.Warn:
		return StateWarning, v
	default:
		return StateOK, v
	}
}

// Agent is the NRPE-like remote agent: it holds the checks configured for
// one host and runs them on request from the master. Checks are registered
// at setup time, before polling starts; the check table is read-only after
// that, so RunCheck needs no lock.
type Agent struct {
	Host   string
	checks map[string]Check
}

// NewAgent creates an agent for a host.
func NewAgent(host string) *Agent {
	return &Agent{Host: host, checks: make(map[string]Check)}
}

// Register adds a check to the agent's configuration.
func (a *Agent) Register(c Check) { a.checks[c.Name] = c }

// RunCheck executes one named check (the NRPE request path).
func (a *Agent) RunCheck(name string) (State, float64, error) {
	c, ok := a.checks[name]
	if !ok {
		return StateUnknown, 0, fmt.Errorf("monitor: host %s has no check %q", a.Host, name)
	}
	st, v := c.Evaluate()
	return st, v, nil
}

// CheckNames lists the agent's configured checks, sorted.
func (a *Agent) CheckNames() []string {
	out := make([]string, 0, len(a.checks))
	for n := range a.checks {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Alert is a notification sent to administrators on a threshold crossing.
type Alert struct {
	Host  string
	Check string
	State State
	Value float64
	At    sim.Time
}

// Master is the Nagios master server: it polls every agent's checks on an
// interval and alerts on state transitions (not on steady bad states —
// Nagios-style notification on change, with re-notification left out).
//
// pollAll fires on the clock-driving goroutine while status pages read
// Alerts/StateOf; mu covers the agent table, the state map, the alert log
// and the ChecksRun counter. The notify callback is invoked without the
// lock held.
type Master struct {
	engine *sim.Engine
	notify func(Alert)
	ticker *sim.Ticker

	mu     sync.Mutex
	agents map[string]*Agent
	last   map[string]State // "host/check" -> last state
	alerts []Alert

	ChecksRun int64
	// PollsAbandoned counts agent sweeps that missed their per-poll
	// deadline (a hung plugin); read with atomic.LoadInt64 while polling
	// may fire.
	PollsAbandoned int64

	// deadline bounds one agent sweep's wall time; defaults to
	// pollDeadline. Set during setup (SetPollDeadline).
	deadline time.Duration
}

// NewMaster starts a master polling all registered agents every interval.
// notify (may be nil) receives alerts as they fire.
func NewMaster(e *sim.Engine, interval sim.Duration, notify func(Alert)) *Master {
	m := &Master{
		engine: e, agents: make(map[string]*Agent),
		last: make(map[string]State), notify: notify,
		deadline: pollDeadline,
	}
	m.ticker = e.Every(interval, m.pollAll)
	return m
}

// SetPollDeadline overrides the per-sweep wall deadline (0 = wait
// forever). Call during setup, before the clock is driven.
func (m *Master) SetPollDeadline(d time.Duration) { m.deadline = d }

// AddAgent registers a host's agent with the master.
func (m *Master) AddAgent(a *Agent) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.agents[a.Host] = a
}

// Stop halts polling.
func (m *Master) Stop() { m.ticker.Stop() }

func (m *Master) pollAll() {
	m.mu.Lock()
	hosts := make([]string, 0, len(m.agents))
	for h := range m.agents {
		hosts = append(hosts, h)
	}
	m.mu.Unlock()
	sort.Strings(hosts)
	now := m.engine.Now()

	// One task per agent host: the whole sweep runs outside m.mu (plugins
	// reach into other subsystems — disk models, clouds — with locks of
	// their own) and the hosts fan out over the bounded pool so one slow
	// plugin does not serialize every other host's sweep. Results land in
	// per-host slots; state transitions and alerts are then applied on
	// this goroutine in sorted host order, so the alert log stays
	// deterministic regardless of which host finished first.
	type result struct {
		name  string
		state State
		value float64
	}
	type slot struct {
		mu  sync.Mutex // an abandoned sweep may write late
		res []result
	}
	slots := make([]slot, len(hosts))
	tasks := make([]func(), len(hosts))
	for i, h := range hosts {
		m.mu.Lock()
		a := m.agents[h]
		m.mu.Unlock()
		i, a := i, a
		tasks[i] = func() {
			names := a.CheckNames()
			res := make([]result, 0, len(names))
			for _, name := range names {
				st, v, err := a.RunCheck(name)
				if err != nil {
					st = StateUnknown
				}
				res = append(res, result{name: name, state: st, value: v})
			}
			slots[i].mu.Lock()
			slots[i].res = res
			slots[i].mu.Unlock()
		}
	}
	completed := fanout.Each(pollWorkers, m.deadline, tasks)

	var fired []Alert
	for i, h := range hosts {
		if !completed[i] {
			atomic.AddInt64(&m.PollsAbandoned, 1)
			continue
		}
		slots[i].mu.Lock()
		res := slots[i].res
		slots[i].mu.Unlock()
		for _, r := range res {
			key := h + "/" + r.name
			m.mu.Lock()
			m.ChecksRun++
			if r.state != m.last[key] && r.state != StateOK {
				al := Alert{Host: h, Check: r.name, State: r.state, Value: r.value, At: now}
				m.alerts = append(m.alerts, al)
				fired = append(fired, al)
			}
			m.last[key] = r.state
			m.mu.Unlock()
		}
	}
	if m.notify != nil {
		for _, al := range fired {
			m.notify(al)
		}
	}
}

// Alerts returns all fired alerts.
func (m *Master) Alerts() []Alert {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]Alert(nil), m.alerts...)
}

// StateOf returns the last observed state of host/check.
func (m *Master) StateOf(host, check string) State {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.last[host+"/"+check]
}

// --- the in-house cloud usage monitor ---

// UsageSnapshot is the public high-level cloud summary (§7.4: "the high
// level summary of the cloud status is made public on the OSDC website").
type UsageSnapshot struct {
	At          sim.Time
	Cloud       string
	RunningVMs  int
	UsedCores   int
	TotalCores  int
	ActiveUsers int
}

// UsageMonitor samples the attached clouds periodically through their
// cloudapi transports — in-process Local wrappers or HTTP Remotes, the
// monitor does not care. sample fires on the clock-driving goroutine while
// PublicStatus serves web requests; mu covers the snapshot table.
type UsageMonitor struct {
	engine *sim.Engine
	clouds []cloudapi.CloudAPI
	ticker *sim.Ticker

	mu     sync.Mutex
	latest map[string]UsageSnapshot

	// SampleErrors counts failed cloud samples (an unreachable remote
	// site); read it with atomic.LoadInt64 while sampling may fire.
	SampleErrors int64
	// errByCloud breaks SampleErrors down per cloud; keys fixed at
	// construction, values atomic.
	errByCloud map[string]*int64

	// deadline bounds one cloud sample's wall time; defaults to
	// pollDeadline. Set during setup (SetPollDeadline).
	deadline time.Duration

	// The reused delta-sampling machinery, mirroring billing.Biller: slots
	// and tasks are built once at construction (no per-tick allocation),
	// prior holds each cloud's maintained per-user snapshot and next-poll
	// revision (clock goroutine only), and gen stamps each sweep so an
	// abandoned task cannot write a stale result into a later sweep.
	slots []sampleSlot
	tasks []func()
	prior []cloudUsageState
	gen   uint64
}

// sampleSlot is one cloud's reused result cell; the mutex guards against
// a late write from an abandoned sample, the gen match discards it.
type sampleSlot struct {
	mu    sync.Mutex
	gen   uint64
	since int64
	d     cloudapi.UsageDelta
	err   error
}

// cloudUsageState is one cloud's maintained usage snapshot under delta
// polling. Only the clock-driving goroutine touches it.
type cloudUsageState struct {
	since  int64
	byUser map[string]cloudapi.UserUsage
}

// apply folds a delta into the snapshot.
func (st *cloudUsageState) apply(d cloudapi.UsageDelta) {
	if d.Reset || st.byUser == nil {
		st.byUser = make(map[string]cloudapi.UserUsage, len(d.Changed))
	}
	for user, v := range d.Changed {
		st.byUser[user] = v
	}
	for _, user := range d.Removed {
		delete(st.byUser, user)
	}
	st.since = d.Rev
}

// errSampleAbandoned pre-fills a slot each sweep so a slot whose task
// never ran reads as a failure, never as a stale success.
var errSampleAbandoned = errors.New("monitor: sample abandoned before the cloud answered")

// NewUsageMonitor starts sampling every interval.
func NewUsageMonitor(e *sim.Engine, clouds []cloudapi.CloudAPI, interval sim.Duration) *UsageMonitor {
	um := &UsageMonitor{engine: e, clouds: clouds, latest: make(map[string]UsageSnapshot),
		deadline: pollDeadline}
	um.errByCloud = make(map[string]*int64, len(clouds))
	for _, c := range clouds {
		um.errByCloud[c.Name()] = new(int64)
	}
	um.slots = make([]sampleSlot, len(clouds))
	um.prior = make([]cloudUsageState, len(clouds))
	um.tasks = make([]func(), len(clouds))
	for i, c := range clouds {
		i, c := i, c
		um.tasks[i] = func() {
			s := &um.slots[i]
			s.mu.Lock()
			gen, since := s.gen, s.since
			s.mu.Unlock()
			d, err := c.UsageSince(since)
			s.mu.Lock()
			if s.gen == gen { // a later sweep may have re-armed the slot
				s.d, s.err = d, err
			}
			s.mu.Unlock()
		}
	}
	um.ticker = e.Every(interval, um.sample)
	return um
}

// SetPollDeadline overrides the per-sample wall deadline (0 = wait
// forever). Call during setup, before the clock is driven.
func (um *UsageMonitor) SetPollDeadline(d time.Duration) { um.deadline = d }

// SampleErrorsByCloud returns each cloud's sample-failure count, zero
// entries included.
func (um *UsageMonitor) SampleErrorsByCloud() map[string]int64 {
	out := make(map[string]int64, len(um.errByCloud))
	for name, n := range um.errByCloud {
		out[name] = atomic.LoadInt64(n)
	}
	return out
}

// sample queries every cloud concurrently through the bounded pool —
// sample fires on the clock-driving goroutine, and one hung remote site
// polled serially would stall the clock for every site behind it. A
// sample that misses the per-poll deadline counts against that cloud in
// SampleErrorsByCloud; its late result is discarded.
// The sweep polls incrementally: each task asks UsageSince(prior rev)
// and the clock goroutine folds the churn into the cloud's maintained
// snapshot before summarizing it — the same delta path the biller uses,
// so a steady-state sweep ships empty deltas, not full per-user maps.
func (um *UsageMonitor) sample() {
	now := um.engine.Now()
	um.gen++
	for i := range um.slots {
		s := &um.slots[i]
		s.mu.Lock()
		s.gen, s.since = um.gen, um.prior[i].since
		s.err = errSampleAbandoned
		s.mu.Unlock()
	}
	completed := fanout.Each(pollWorkers, um.deadline, um.tasks)
	for i, c := range um.clouds {
		if !completed[i] {
			atomic.AddInt64(&um.SampleErrors, 1)
			atomic.AddInt64(um.errByCloud[c.Name()], 1)
			continue
		}
		s := &um.slots[i]
		s.mu.Lock()
		d, err := s.d, s.err
		s.mu.Unlock()
		if err != nil {
			atomic.AddInt64(&um.SampleErrors, 1)
			atomic.AddInt64(um.errByCloud[c.Name()], 1)
			continue
		}
		st := &um.prior[i]
		st.apply(d)
		snap := UsageSnapshot{
			At: now, Cloud: c.Name(),
			UsedCores: d.UsedCores, TotalCores: d.TotalCores,
			ActiveUsers: len(st.byUser),
		}
		for _, v := range st.byUser {
			snap.RunningVMs += v.Instances
		}
		um.mu.Lock()
		um.latest[c.Name()] = snap
		um.mu.Unlock()
	}
}

// PublicStatus returns the latest snapshot per cloud, sorted by name.
func (um *UsageMonitor) PublicStatus() []UsageSnapshot {
	um.mu.Lock()
	defer um.mu.Unlock()
	names := make([]string, 0, len(um.latest))
	for n := range um.latest {
		names = append(names, n)
	}
	sort.Strings(names)
	out := make([]UsageSnapshot, 0, len(names))
	for _, n := range names {
		out = append(out, um.latest[n])
	}
	return out
}

// Stop halts sampling.
func (um *UsageMonitor) Stop() { um.ticker.Stop() }
