package monitor

import (
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"osdc/internal/cloudapi"
	"osdc/internal/iaas"
	"osdc/internal/sim"
)

func TestCheckThresholds(t *testing.T) {
	v := 0.0
	c := Check{Name: "disk", Plugin: func() (float64, error) { return v, nil }, Warn: 80, Crit: 95}
	cases := []struct {
		val  float64
		want State
	}{{10, StateOK}, {80, StateWarning}, {94.9, StateWarning}, {95, StateCritical}, {200, StateCritical}}
	for _, tc := range cases {
		v = tc.val
		if st, _ := c.Evaluate(); st != tc.want {
			t.Fatalf("value %v -> %v, want %v", tc.val, st, tc.want)
		}
	}
}

func TestCheckPluginErrorIsUnknown(t *testing.T) {
	c := Check{Name: "x", Plugin: func() (float64, error) { return 0, errors.New("nope") }}
	if st, _ := c.Evaluate(); st != StateUnknown {
		t.Fatalf("state = %v, want UNKNOWN", st)
	}
}

func TestAgentRunsNamedChecks(t *testing.T) {
	a := NewAgent("gluster01")
	a.Register(Check{Name: "load", Plugin: func() (float64, error) { return 1.5, nil }, Warn: 8, Crit: 16})
	st, v, err := a.RunCheck("load")
	if err != nil || st != StateOK || v != 1.5 {
		t.Fatalf("RunCheck = %v %v %v", st, v, err)
	}
	if _, _, err := a.RunCheck("missing"); err == nil {
		t.Fatal("missing check must error")
	}
}

func TestMasterAlertsOnTransitionOnly(t *testing.T) {
	e := sim.NewEngine(9)
	var notified []Alert
	m := NewMaster(e, 60, func(a Alert) { notified = append(notified, a) })
	diskUse := 50.0
	agent := NewAgent("node1")
	agent.Register(Check{Name: "disk", Plugin: func() (float64, error) { return diskUse, nil }, Warn: 80, Crit: 95})
	m.AddAgent(agent)

	e.RunFor(300) // 5 polls, all OK
	if len(notified) != 0 {
		t.Fatalf("alerts while OK: %d", len(notified))
	}
	diskUse = 85
	e.RunFor(180) // crosses into WARNING once
	if len(notified) != 1 || notified[0].State != StateWarning {
		t.Fatalf("alerts = %+v, want single WARNING", notified)
	}
	diskUse = 97
	e.RunFor(120)
	if len(notified) != 2 || notified[1].State != StateCritical {
		t.Fatalf("no escalation to CRITICAL: %+v", notified)
	}
	// Staying critical does not re-alert.
	e.RunFor(600)
	if len(notified) != 2 {
		t.Fatalf("re-alerted on steady state: %d", len(notified))
	}
	if m.StateOf("node1", "disk") != StateCritical {
		t.Fatal("StateOf wrong")
	}
	if m.ChecksRun == 0 {
		t.Fatal("no checks counted")
	}
}

func TestMasterRecoveryThenReAlert(t *testing.T) {
	e := sim.NewEngine(9)
	var notified []Alert
	m := NewMaster(e, 60, func(a Alert) { notified = append(notified, a) })
	bad := false
	agent := NewAgent("n")
	agent.Register(Check{Name: "svc", Plugin: func() (float64, error) {
		if bad {
			return 1, nil
		}
		return 0, nil
	}, Warn: 1, Crit: 2})
	m.AddAgent(agent)
	bad = true
	e.RunFor(90)
	bad = false
	e.RunFor(90) // recovers (no alert for OK)
	bad = true
	e.RunFor(90) // fails again -> second alert
	if len(notified) != 2 {
		t.Fatalf("alerts = %d, want 2 (re-alert after recovery)", len(notified))
	}
}

func TestUsageMonitorPublishesSnapshot(t *testing.T) {
	e := sim.NewEngine(9)
	c := iaas.NewCloud(e, "adler", "openstack", "chicago")
	c.AddRack("r", 4)
	c.SetQuota("u", iaas.Quota{MaxInstances: 10, MaxCores: 100})
	if _, err := c.Launch("u", "vm", "m1.large", ""); err != nil {
		t.Fatal(err)
	}
	um := NewUsageMonitor(e, []cloudapi.CloudAPI{cloudapi.NewLocal(c)}, 300)
	e.RunFor(301)
	status := um.PublicStatus()
	if len(status) != 1 {
		t.Fatalf("status entries = %d", len(status))
	}
	s := status[0]
	if s.Cloud != "adler" || s.RunningVMs != 1 || s.UsedCores != 4 || s.TotalCores != 32 || s.ActiveUsers != 1 {
		t.Fatalf("snapshot = %+v", s)
	}
	um.Stop()
}

// hangingCloud is a CloudAPI whose usage samples block until released.
type hangingCloud struct {
	cloudapi.CloudAPI
	name    string
	release chan struct{}
}

func (h *hangingCloud) Name() string { return h.name }
func (h *hangingCloud) Usage() (cloudapi.Usage, error) {
	<-h.release
	return cloudapi.Usage{}, nil
}
func (h *hangingCloud) UsageSince(int64) (cloudapi.UsageDelta, error) {
	<-h.release
	return cloudapi.UsageDelta{}, nil
}

// TestAbandonedSampleSurfacesPerCloud: a cloud whose Usage hangs past the
// sample deadline lands in SampleErrorsByCloud while the healthy cloud's
// snapshot still publishes.
func TestAbandonedSampleSurfacesPerCloud(t *testing.T) {
	e := sim.NewEngine(9)
	c := iaas.NewCloud(e, "adler", "openstack", "chicago")
	c.AddRack("r", 4)
	hung := &hangingCloud{name: "hung-site", release: make(chan struct{})}
	t.Cleanup(func() { close(hung.release) })

	um := NewUsageMonitor(e, []cloudapi.CloudAPI{cloudapi.NewLocal(c), hung}, 300)
	um.SetPollDeadline(5 * time.Millisecond)
	e.RunFor(901)
	um.Stop()

	per := um.SampleErrorsByCloud()
	if per["adler"] != 0 {
		t.Fatalf("healthy cloud charged %d sample errors", per["adler"])
	}
	if per["hung-site"] < 2 {
		t.Fatalf("hung-site abandoned samples = %d, want ~3", per["hung-site"])
	}
	status := um.PublicStatus()
	if len(status) != 1 || status[0].Cloud != "adler" {
		t.Fatalf("healthy snapshot missing: %+v", status)
	}
}

// TestMasterAbandonsHungAgent: one agent's plugin hangs; its sweep is
// abandoned (PollsAbandoned) while the other host's checks keep running.
func TestMasterAbandonsHungAgent(t *testing.T) {
	e := sim.NewEngine(9)
	m := NewMaster(e, 60, nil)
	m.SetPollDeadline(5 * time.Millisecond)

	release := make(chan struct{})
	t.Cleanup(func() { close(release) })
	stuck := NewAgent("stuck-host")
	stuck.Register(Check{Name: "hang", Plugin: func() (float64, error) {
		<-release
		return 0, nil
	}, Warn: 1, Crit: 2})
	healthy := NewAgent("ok-host")
	healthy.Register(Check{Name: "load", Plugin: func() (float64, error) { return 0.5, nil }, Warn: 8, Crit: 16})
	m.AddAgent(stuck)
	m.AddAgent(healthy)

	e.RunFor(301) // 5 polls
	m.Stop()

	if n := atomic.LoadInt64(&m.PollsAbandoned); n < 4 {
		t.Fatalf("PollsAbandoned = %d, want ~5", n)
	}
	if m.StateOf("ok-host", "load") != StateOK {
		t.Fatal("healthy host's checks did not run")
	}
	if m.StateOf("stuck-host", "hang") != StateOK {
		t.Fatal("abandoned sweep must not record a state")
	}
}
