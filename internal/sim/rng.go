package sim

import "math"

// RNG is a small, fast, deterministic random source (xoshiro256** core).
// We do not use math/rand's global source: simulations must be reproducible
// across packages regardless of what other code draws randomness.
type RNG struct {
	s [4]uint64
}

// NewRNG returns an RNG seeded from seed via SplitMix64, so even seeds 0 and
// 1 give well-mixed states.
func NewRNG(seed uint64) *RNG {
	r := &RNG{}
	sm := seed
	next := func() uint64 {
		sm += 0x9E3779B97F4A7C15
		z := sm
		z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
		z = (z ^ (z >> 27)) * 0x94D049BB133111EB
		return z ^ (z >> 31)
	}
	for i := range r.s {
		r.s[i] = next()
	}
	return r
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 random bits.
func (r *RNG) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / float64(1<<53)
}

// Intn returns a uniform int in [0, n). Panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Int63n returns a uniform int64 in [0, n). Panics if n <= 0.
func (r *RNG) Int63n(n int64) int64 {
	if n <= 0 {
		panic("sim: Int63n with non-positive n")
	}
	return int64(r.Uint64() % uint64(n))
}

// Bernoulli returns true with probability p.
func (r *RNG) Bernoulli(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}

// Exp returns an exponentially distributed value with the given mean.
func (r *RNG) Exp(mean float64) float64 {
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	return -mean * math.Log(u)
}

// Normal returns a normally distributed value (Box–Muller).
func (r *RNG) Normal(mean, stddev float64) float64 {
	u1 := r.Float64()
	for u1 == 0 {
		u1 = r.Float64()
	}
	u2 := r.Float64()
	z := math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
	return mean + stddev*z
}

// LogNormal returns a log-normally distributed value parameterized by the
// mean and stddev of the underlying normal.
func (r *RNG) LogNormal(mu, sigma float64) float64 {
	return math.Exp(r.Normal(mu, sigma))
}

// Pareto returns a Pareto-distributed value with scale xm and shape alpha.
// Heavy-tailed flow sizes in the workload generator use this.
func (r *RNG) Pareto(xm, alpha float64) float64 {
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	return xm / math.Pow(u, 1/alpha)
}

// Perm returns a random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Shuffle randomizes the order of n elements via swap.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Fork derives an independent RNG stream; useful to give each subsystem its
// own stream so adding draws in one does not perturb another.
func (r *RNG) Fork() *RNG { return NewRNG(r.Uint64()) }
