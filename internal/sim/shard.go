package sim

import "sync"

// Clock is the advanceable-clock surface shared by a single Engine and a
// ShardSet: what a Driver or Follower needs to push virtual time forward.
type Clock interface {
	// Now returns the current virtual time — for a ShardSet, the minimum
	// across shards (no event anywhere has been dispatched past it).
	Now() Time
	// RunUntil executes events with timestamps ≤ deadline and advances the
	// clock to the deadline.
	RunUntil(deadline Time) Time
	// Share switches into shared (locked) mode before concurrent use.
	Share()
}

var (
	_ Clock = (*Engine)(nil)
	_ Clock = (*ShardSet)(nil)
)

// ShardSet is the sharded simulation kernel: K independent Engine shards
// advanced in lockstep to a common target each tick. Entities (instances,
// flows, datasets) are pinned to shards by a stable hash of their ID, so
// everything about one entity happens on one shard and per-shard RNG
// streams keep runs deterministic — including under parallel shard
// advance, because shards share no state.
//
// Cross-shard skew is bounded exactly like cross-site skew in the clock
// plane: between RunUntil calls every shard sits at the same target, and
// during a call no shard runs past the common deadline, so no shard ever
// leads another by more than one advance interval.
//
// Shard 0 is the anchor: it is seeded with exactly the set's seed, so a
// K=1 ShardSet is bit-identical to a bare NewEngine(seed) — the goldens
// pinned against the single-engine kernel reproduce unchanged.
//
// Determinism contract: during a parallel advance (K > 1), a callback on
// shard i may only touch shard i and state owned by shard i's entities.
// Cross-shard writes need external synchronization and forfeit trace
// determinism; route cross-entity interactions through the shard that
// owns the target entity instead.
type ShardSet struct {
	shards []*Engine
}

// NewShardSet returns a set of k engine shards (k <= 0 means 1). Shard 0
// is seeded with seed exactly; shard i is seeded with seed offset by i
// times the SplitMix64 increment, giving well-separated streams.
func NewShardSet(seed uint64, k int) *ShardSet {
	if k <= 0 {
		k = 1
	}
	s := &ShardSet{shards: make([]*Engine, k)}
	for i := range s.shards {
		s.shards[i] = NewEngine(seed + uint64(i)*0x9E3779B97F4A7C15)
	}
	return s
}

// K returns the number of shards.
func (s *ShardSet) K() int { return len(s.shards) }

// Anchor returns shard 0, the engine whose clock anchors the set: the
// clock plane publishes and follows the anchor's time, and with K=1 it is
// the whole kernel.
func (s *ShardSet) Anchor() *Engine { return s.shards[0] }

// ShardAt returns shard i.
func (s *ShardSet) ShardAt(i int) *Engine { return s.shards[i] }

// ShardIndex returns the shard index key hashes to (FNV-1a).
func (s *ShardSet) ShardIndex(key string) int {
	if len(s.shards) == 1 {
		return 0
	}
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= prime64
	}
	return int(h % uint64(len(s.shards)))
}

// Shard returns the engine owning key — a stable assignment: the same key
// maps to the same shard for the lifetime of the set.
func (s *ShardSet) Shard(key string) *Engine {
	return s.shards[s.ShardIndex(key)]
}

// Share switches every shard into shared (locked) mode.
func (s *ShardSet) Share() {
	for _, e := range s.shards {
		e.Share()
	}
}

// Now returns the minimum clock across shards: virtual time the whole set
// has certainly reached.
func (s *ShardSet) Now() Time {
	min := s.shards[0].Now()
	for _, e := range s.shards[1:] {
		if t := e.Now(); t < min {
			min = t
		}
	}
	return min
}

// Skew returns the spread between the fastest and slowest shard clocks.
// Outside a RunUntil call it is zero unless a shard halted mid-advance.
func (s *ShardSet) Skew() Duration {
	min, max := s.shards[0].Now(), s.shards[0].Now()
	for _, e := range s.shards[1:] {
		t := e.Now()
		if t < min {
			min = t
		}
		if t > max {
			max = t
		}
	}
	return Duration(max - min)
}

// RunUntil advances every shard to the common deadline — concurrently when
// K > 1; the join synchronizes, so the caller may use unshared shards
// between calls. It returns the set's clock afterwards (the deadline,
// unless a shard halted).
func (s *ShardSet) RunUntil(deadline Time) Time {
	if len(s.shards) == 1 {
		return s.shards[0].RunUntil(deadline)
	}
	var wg sync.WaitGroup
	for _, e := range s.shards {
		wg.Add(1)
		go func(e *Engine) {
			defer wg.Done()
			e.RunUntil(deadline)
		}(e)
	}
	wg.Wait()
	return s.Now()
}

// RunFor advances the set by d. See RunUntil.
func (s *ShardSet) RunFor(d Duration) Time { return s.RunUntil(s.Now() + Time(d)) }

// Pending returns the total live events queued across shards.
func (s *ShardSet) Pending() int {
	n := 0
	for _, e := range s.shards {
		n += e.Pending()
	}
	return n
}

// Fired returns the total events executed across shards.
func (s *ShardSet) Fired() uint64 {
	var n uint64
	for _, e := range s.shards {
		n += e.Fired()
	}
	return n
}
