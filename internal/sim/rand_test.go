package sim

import (
	"sync"
	"testing"
	"time"
)

// TestRandSurfaceSharedMode hammers the locked RNG surface from several
// goroutines while a Driver advances the engine and callbacks draw too.
// Run under -race this is the test that would have caught the old pattern
// of HTTP handlers calling e.RNG().Float64() directly against a live
// clock driver — the raw RNG has no lock, the Rand* surface does.
func TestRandSurfaceSharedMode(t *testing.T) {
	e := NewEngine(42)
	tk := e.Every(0.001, func() {
		// Clock-goroutine callbacks share the same stream safely.
		_ = e.RandExp(1.0)
	})
	d := StartDriver(e, 1000, time.Millisecond)
	defer func() {
		d.Stop()
		tk.Stop()
	}()

	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				if f := e.RandFloat64(); f < 0 || f >= 1 {
					t.Errorf("RandFloat64 = %v out of range", f)
					return
				}
				if n := e.RandIntn(10); n < 0 || n >= 10 {
					t.Errorf("RandIntn = %d out of range", n)
					return
				}
				_ = e.RandUint64()
				if v := e.RandExp(2.0); v < 0 {
					t.Errorf("RandExp = %v negative", v)
					return
				}
			}
		}()
	}
	wg.Wait()
}

// TestRandSurfaceDeterministicWhenSerial: with a single caller the locked
// surface draws the same stream as the raw RNG would.
func TestRandSurfaceDeterministicWhenSerial(t *testing.T) {
	a, b := NewEngine(7), NewEngine(7)
	for i := 0; i < 100; i++ {
		if a.RandUint64() != b.RNG().Uint64() {
			t.Fatal("locked surface diverged from raw RNG stream")
		}
	}
}
