// Package sim provides a deterministic discrete-event simulation kernel.
//
// Every timed subsystem in this repository — the WAN model, disks, transfer
// protocols, provisioning pipelines, billing pollers, monitoring agents —
// runs on top of a sim.Engine. The engine owns a virtual clock and a pending
// event queue ordered by (time, sequence). Determinism is guaranteed: two
// runs with the same seed and same schedule order produce identical traces,
// which is what makes the benchmark tables reproducible.
package sim

import (
	"container/heap"
	"fmt"
	"math"
	"time"
)

// Time is a point in virtual time, measured in seconds from the start of the
// simulation. Virtual time has no relation to wall-clock time; a petabyte
// transfer simulates in milliseconds of real time.
type Time float64

// Duration is a span of virtual time in seconds.
type Duration = float64

// Common durations, in seconds.
const (
	Microsecond Duration = 1e-6
	Millisecond Duration = 1e-3
	Second      Duration = 1
	Minute      Duration = 60
	Hour        Duration = 3600
	Day         Duration = 86400
	Week        Duration = 7 * 86400
)

// Forever is a sentinel time later than any reachable event.
const Forever Time = Time(math.MaxFloat64)

// String renders a Time as d/h/m/s for readable traces.
func (t Time) String() string {
	s := float64(t)
	switch {
	case s >= Day:
		return fmt.Sprintf("%.2fd", s/Day)
	case s >= Hour:
		return fmt.Sprintf("%.2fh", s/Hour)
	case s >= Minute:
		return fmt.Sprintf("%.2fm", s/Minute)
	default:
		return fmt.Sprintf("%.3fs", s)
	}
}

// AsWall converts virtual seconds to a time.Duration for reporting.
func (t Time) AsWall() time.Duration { return time.Duration(float64(t) * float64(time.Second)) }

// Event is a scheduled callback. Fire runs at the event's time with the
// engine clock already advanced.
type event struct {
	at   Time
	seq  uint64 // tie-break: FIFO among equal timestamps
	fire func()
	// cancelled events stay in the heap but are skipped on pop.
	cancelled bool
}

// Handle identifies a scheduled event so it can be cancelled.
type Handle struct{ ev *event }

// Cancel prevents the event from firing. Safe to call multiple times and
// after the event has fired (then it is a no-op).
func (h Handle) Cancel() {
	if h.ev != nil {
		h.ev.cancelled = true
	}
}

// Cancelled reports whether Cancel was called.
func (h Handle) Cancelled() bool { return h.ev != nil && h.ev.cancelled }

type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x interface{}) { *q = append(*q, x.(*event)) }
func (q *eventQueue) Pop() interface{} {
	old := *q
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return ev
}

// Engine is the discrete-event scheduler. The zero value is not usable; use
// NewEngine.
type Engine struct {
	now    Time
	queue  eventQueue
	seq    uint64
	rng    *RNG
	trace  func(t Time, msg string)
	fired  uint64
	halted bool
}

// NewEngine returns an engine with its clock at zero and a deterministic RNG
// seeded with seed.
func NewEngine(seed uint64) *Engine {
	return &Engine{rng: NewRNG(seed)}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// RNG returns the engine's deterministic random source.
func (e *Engine) RNG() *RNG { return e.rng }

// Fired returns the number of events executed so far.
func (e *Engine) Fired() uint64 { return e.fired }

// Pending returns the number of events still queued (including cancelled
// ones not yet skipped).
func (e *Engine) Pending() int { return len(e.queue) }

// SetTrace installs a trace sink invoked by Tracef. A nil sink disables
// tracing.
func (e *Engine) SetTrace(fn func(t Time, msg string)) { e.trace = fn }

// Tracef emits a trace line if tracing is enabled.
func (e *Engine) Tracef(format string, args ...interface{}) {
	if e.trace != nil {
		e.trace(e.now, fmt.Sprintf(format, args...))
	}
}

// At schedules fire to run at absolute time t. Scheduling in the past (t <
// Now) panics: that is always a logic bug in a discrete-event model.
func (e *Engine) At(t Time, fire func()) Handle {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling into the past: at=%v now=%v", t, e.now))
	}
	ev := &event{at: t, seq: e.seq, fire: fire}
	e.seq++
	heap.Push(&e.queue, ev)
	return Handle{ev}
}

// After schedules fire to run d seconds from now. Negative d panics.
func (e *Engine) After(d Duration, fire func()) Handle {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	return e.At(e.now+Time(d), fire)
}

// Every schedules fire to run every period seconds, starting one period from
// now, until the returned Ticker is stopped or the engine halts.
func (e *Engine) Every(period Duration, fire func()) *Ticker {
	if period <= 0 {
		panic("sim: non-positive ticker period")
	}
	tk := &Ticker{engine: e, period: period, fire: fire}
	tk.schedule()
	return tk
}

// Ticker is a repeating event created by Every.
type Ticker struct {
	engine  *Engine
	period  Duration
	fire    func()
	handle  Handle
	stopped bool
}

func (tk *Ticker) schedule() {
	tk.handle = tk.engine.After(tk.period, func() {
		if tk.stopped {
			return
		}
		tk.fire()
		if !tk.stopped {
			tk.schedule()
		}
	})
}

// Stop cancels future ticks.
func (tk *Ticker) Stop() {
	tk.stopped = true
	tk.handle.Cancel()
}

// Halt stops the run loop after the current event returns.
func (e *Engine) Halt() { e.halted = true }

// Step executes the single earliest pending event. It reports false when the
// queue is empty.
func (e *Engine) Step() bool {
	for len(e.queue) > 0 {
		ev := heap.Pop(&e.queue).(*event)
		if ev.cancelled {
			continue
		}
		if ev.at < e.now {
			panic("sim: event queue time went backwards")
		}
		e.now = ev.at
		e.fired++
		ev.fire()
		return true
	}
	return false
}

// Run executes events until the queue drains or Halt is called. It returns
// the final clock value.
func (e *Engine) Run() Time {
	e.halted = false
	for !e.halted && e.Step() {
	}
	return e.now
}

// RunUntil executes events with timestamps ≤ deadline, then sets the clock
// to deadline (if it has not passed it already) and returns.
func (e *Engine) RunUntil(deadline Time) Time {
	e.halted = false
	for !e.halted {
		if len(e.queue) == 0 {
			break
		}
		// Peek at the earliest live event.
		next := e.peek()
		if next == nil || next.at > deadline {
			break
		}
		e.Step()
	}
	if e.now < deadline {
		e.now = deadline
	}
	return e.now
}

// RunFor advances the clock by d. See RunUntil.
func (e *Engine) RunFor(d Duration) Time { return e.RunUntil(e.now + Time(d)) }

func (e *Engine) peek() *event {
	for len(e.queue) > 0 {
		if e.queue[0].cancelled {
			heap.Pop(&e.queue)
			continue
		}
		return e.queue[0]
	}
	return nil
}
