// Package sim provides a deterministic discrete-event simulation kernel.
//
// Every timed subsystem in this repository — the WAN model, disks, transfer
// protocols, provisioning pipelines, billing pollers, monitoring agents —
// runs on top of a sim.Engine. The engine owns a virtual clock and a pending
// event queue ordered by (time, sequence). Determinism is guaranteed: two
// runs with the same seed and same schedule order produce identical traces,
// which is what makes the benchmark tables reproducible.
//
// The queue is a 4-ary heap over a value slice rather than a binary heap of
// event pointers: scheduling allocates nothing beyond amortized slice
// growth, the shallower tree halves the sift depth, and sift comparisons
// stay within one or two cache lines of siblings. Cancellation is lazy with
// compaction — cancelled events are tombstoned and physically reclaimed
// either on pop or, once they outnumber live events, by an O(n) rebuild —
// so a schedule-heavy workload that cancels most of its timers (retry
// timers, timeouts that rarely fire) cannot grow the heap without bound.
//
// # Batch dispatch
//
// The run loops (Run, RunUntil, RunFor) drain events in same-tick batches:
// every live event sharing the earliest due timestamp is popped under one
// lock acquisition and the callbacks fire unlocked, in FIFO (schedule)
// order. Workloads with synchronized timers — heartbeats aligned to a
// minute boundary, polling sweeps, barrier ticks — pay one lock round-trip
// per tick instead of one per event. Semantics are identical to per-event
// dispatch: order is still (at, seq); a callback cancelling a later event
// of the same tick prevents it from firing; Halt() mid-batch pushes the
// unfired remainder back onto the queue.
//
// For schedule/cancel-heavy hot paths, Timer (NewTimer/Reset) reschedules
// a pre-allocated callback with zero steady-state allocations — the
// pooled-payload discipline the churn benchmarks measure.
//
// # Shared mode
//
// By default an Engine is single-threaded and lock-free: a scenario owns
// its engine and drives it from one goroutine, which is the hot path the
// sweeps exercise. Calling Share before handing the engine to multiple
// goroutines switches it into shared mode, where every public method takes
// an internal mutex. Event callbacks always fire with the lock released,
// so a callback may freely call At/After/Every/Now/Cancel. Exactly one
// goroutine — the clock driver — may call Step/Run/RunUntil/RunFor/Halt;
// any number of goroutines may schedule, cancel and read the clock. This
// is what lets live HTTP handlers share the clock with the Driver that
// advances it.
package sim

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"
)

// Time is a point in virtual time, measured in seconds from the start of the
// simulation. Virtual time has no relation to wall-clock time; a petabyte
// transfer simulates in milliseconds of real time.
type Time float64

// Duration is a span of virtual time in seconds.
type Duration = float64

// Common durations, in seconds.
const (
	Microsecond Duration = 1e-6
	Millisecond Duration = 1e-3
	Second      Duration = 1
	Minute      Duration = 60
	Hour        Duration = 3600
	Day         Duration = 86400
	Week        Duration = 7 * 86400
)

// Forever is a sentinel time later than any reachable event.
const Forever Time = Time(math.MaxFloat64)

// String renders a Time as d/h/m/s for readable traces.
func (t Time) String() string {
	s := float64(t)
	switch {
	case s >= Day:
		return fmt.Sprintf("%.2fd", s/Day)
	case s >= Hour:
		return fmt.Sprintf("%.2fh", s/Hour)
	case s >= Minute:
		return fmt.Sprintf("%.2fm", s/Minute)
	default:
		return fmt.Sprintf("%.3fs", s)
	}
}

// AsWall converts virtual seconds to a time.Duration for reporting.
func (t Time) AsWall() time.Duration { return time.Duration(float64(t) * float64(time.Second)) }

// event is one scheduled callback, stored by value in the heap slice.
type event struct {
	at   Time
	seq  uint64 // tie-break: FIFO among equal timestamps; unique per event
	fire func()
}

// batchEntry is one same-tick event drained from the queue but not yet
// fired. The dead word is claimed by compare-and-swap from two sides: the
// run loop (about to fire the entry) and Cancel (the event's Handle was
// cancelled after the drain). Whoever wins decides — a cancelled entry
// never fires, and cancelling an already-claimed entry is the documented
// fired-event no-op.
type batchEntry struct {
	seq  uint64
	fire func()
	dead uint32 // accessed with sync/atomic
}

// Handle identifies a scheduled event so it can be cancelled. The zero
// Handle is inert: Cancel is a no-op and Cancelled reports false. The
// cancelled bit lives in the Handle value itself, so copies of a Handle do
// not observe each other's Cancel calls (the engine-side effect — the event
// not firing — is shared regardless of which copy cancelled it). In shared
// mode the bit is read and written under the engine lock, so goroutines
// sharing one Handle may race Cancel against Cancel or Cancelled safely.
type Handle struct {
	e         *Engine
	seq       uint64
	cancelled bool
}

// Cancel prevents the event from firing and releases its heap slot (at the
// latest, when tombstones outnumber live events and trigger compaction).
// Safe to call multiple times and after the event has fired (then it is a
// no-op).
func (h *Handle) Cancel() {
	if h.e == nil {
		return
	}
	h.e.lock()
	defer h.e.unlock()
	if h.cancelled {
		return
	}
	h.cancelled = true
	h.e.cancel(h.seq)
}

// Cancelled reports whether Cancel was called on this Handle.
func (h *Handle) Cancelled() bool {
	if h.e == nil {
		return false
	}
	h.e.lock()
	defer h.e.unlock()
	return h.cancelled
}

// Engine is the discrete-event scheduler. The zero value is not usable; use
// NewEngine.
type Engine struct {
	// lockOn enables the internal mutex (see Share). It is written once,
	// before any concurrent use, so the unsynchronized read in lock() is
	// ordered by the goroutine creation that follows Share().
	lockOn bool
	mu     sync.Mutex

	now Time
	// queue is a 4-ary min-heap ordered by (at, seq): children of node i
	// live at 4i+1..4i+4.
	queue []event
	// cancelled holds seqs awaiting reclaim; entries are deleted as their
	// events are skipped on pop or swept by compaction, so the map stays
	// bounded by the compaction threshold, not by cancel traffic. Its
	// length is the (upper-bound) count of cancelled events still queued.
	cancelled map[uint64]struct{}
	seq       uint64
	rng       *RNG
	trace     func(t Time, msg string)
	halted    bool

	// fired counts executed events. It is atomic because the batched run
	// loop increments it with the lock released, right before each
	// callback fires.
	fired atomic.Uint64

	// batch is the current same-tick dispatch batch: events popped from
	// the queue in one lock acquisition, fired unlocked in seq order. The
	// slice is owned and resized only by the clock-driving goroutine
	// (always under the engine lock); entries claimed by firing or
	// cancellation carry dead=1, so Pending can count the unfired
	// remainder from any goroutine via the atomic dead words alone.
	batch []batchEntry
}

// NewEngine returns an engine with its clock at zero and a deterministic RNG
// seeded with seed.
func NewEngine(seed uint64) *Engine {
	return &Engine{rng: NewRNG(seed)}
}

// Share switches the engine into shared (locked) mode. It must be called
// before the engine becomes reachable from more than one goroutine; the
// goroutines started afterwards observe the flag through the usual
// happens-before of goroutine creation. There is no way back to lock-free
// mode. Calling Share more than once is harmless.
func (e *Engine) Share() { e.lockOn = true }

func (e *Engine) lock() {
	if e.lockOn {
		e.mu.Lock()
	}
}

func (e *Engine) unlock() {
	if e.lockOn {
		e.mu.Unlock()
	}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time {
	e.lock()
	defer e.unlock()
	return e.now
}

// RNG returns the engine's deterministic random source. The RNG is NOT
// protected by shared mode; only single-threaded scenario code that owns
// the engine may use it directly. Concurrent callers — HTTP handlers,
// callbacks racing a clock driver — must draw through the locked surface
// (RandFloat64, RandIntn, RandUint64, RandExp) instead.
func (e *Engine) RNG() *RNG { return e.rng }

// RandFloat64 draws a uniform value in [0, 1) from the engine RNG under
// the engine lock — the shared-mode-safe surface. Draw order is still
// deterministic per engine: in shared mode it is serialized by the lock,
// and sharded deployments keep determinism by giving every shard (and so
// every entity) its own engine stream.
func (e *Engine) RandFloat64() float64 {
	e.lock()
	defer e.unlock()
	return e.rng.Float64()
}

// RandIntn draws a uniform int in [0, n) under the engine lock. Panics if
// n <= 0.
func (e *Engine) RandIntn(n int) int {
	e.lock()
	defer e.unlock()
	return e.rng.Intn(n)
}

// RandUint64 draws 64 random bits under the engine lock.
func (e *Engine) RandUint64() uint64 {
	e.lock()
	defer e.unlock()
	return e.rng.Uint64()
}

// RandExp draws an exponentially distributed value with the given mean
// under the engine lock.
func (e *Engine) RandExp(mean float64) float64 {
	e.lock()
	defer e.unlock()
	return e.rng.Exp(mean)
}

// Fired returns the number of events executed so far.
func (e *Engine) Fired() uint64 { return e.fired.Load() }

// Pending returns the number of live (non-cancelled) events still queued,
// including events drained into the current dispatch batch but not yet
// fired. The count is exact except after Cancel calls on already-fired
// events (a documented no-op): each leaves a stale tombstone that
// under-counts Pending by one until the next compaction sweeps it away.
func (e *Engine) Pending() int {
	e.lock()
	defer e.unlock()
	n := len(e.queue) - len(e.cancelled)
	for i := range e.batch {
		if atomic.LoadUint32(&e.batch[i].dead) == 0 {
			n++
		}
	}
	if n < 0 {
		return 0
	}
	return n
}

// SetTrace installs a trace sink invoked by Tracef. A nil sink disables
// tracing.
func (e *Engine) SetTrace(fn func(t Time, msg string)) {
	e.lock()
	defer e.unlock()
	e.trace = fn
}

// Tracef emits a trace line if tracing is enabled.
func (e *Engine) Tracef(format string, args ...interface{}) {
	e.lock()
	trace, now := e.trace, e.now
	e.unlock()
	if trace != nil {
		trace(now, fmt.Sprintf(format, args...))
	}
}

// At schedules fire to run at absolute time t. Scheduling in the past (t <
// Now) panics: that is always a logic bug in a discrete-event model.
func (e *Engine) At(t Time, fire func()) Handle {
	e.lock()
	defer e.unlock()
	return e.at(t, fire)
}

// at is At with the lock already held.
func (e *Engine) at(t Time, fire func()) Handle {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling into the past: at=%v now=%v", t, e.now))
	}
	seq := e.seq
	e.seq++
	e.push(event{at: t, seq: seq, fire: fire})
	return Handle{e: e, seq: seq}
}

// After schedules fire to run d seconds from now. Negative d panics.
func (e *Engine) After(d Duration, fire func()) Handle {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	e.lock()
	defer e.unlock()
	return e.at(e.now+Time(d), fire)
}

// Every schedules fire to run every period seconds, starting one period from
// now, until the returned Ticker is stopped or the engine halts.
func (e *Engine) Every(period Duration, fire func()) *Ticker {
	if period <= 0 {
		panic("sim: non-positive ticker period")
	}
	tk := &Ticker{engine: e, period: period, fire: fire}
	tk.schedule()
	return tk
}

// Ticker is a repeating event created by Every. Its own mutex (not the
// engine's) makes Stop safe to call from any goroutine while the tick
// callback fires on the clock-driving one.
type Ticker struct {
	engine *Engine
	period Duration
	fire   func()

	mu      sync.Mutex
	handle  Handle
	stopped bool
}

func (tk *Ticker) schedule() {
	h := tk.engine.After(tk.period, tk.tick)
	tk.mu.Lock()
	tk.handle = h
	tk.mu.Unlock()
}

func (tk *Ticker) tick() {
	tk.mu.Lock()
	stopped := tk.stopped
	tk.mu.Unlock()
	if stopped {
		return
	}
	tk.fire()
	tk.mu.Lock()
	stopped = tk.stopped
	tk.mu.Unlock()
	if !stopped {
		tk.schedule()
	}
}

// Stop cancels future ticks.
func (tk *Ticker) Stop() {
	tk.mu.Lock()
	tk.stopped = true
	h := tk.handle
	tk.mu.Unlock()
	h.Cancel()
}

// Halt stops the run loop after the current event returns. Only the
// clock-driving goroutine (or a callback it is firing) may call it.
func (e *Engine) Halt() { e.halted = true }

// takeNext pops the earliest live event with timestamp ≤ deadline, advances
// the clock to it, and returns its callback — which the caller must invoke
// with the lock released, so the callback can schedule and cancel freely.
// It returns nil when no live event is due by deadline; with clamp set it
// then also advances the clock to the deadline, atomically with the
// emptiness check. The atomicity matters in shared mode: if the clamp
// happened after the lock was dropped, a concurrent After could slip an
// event in below the deadline and the clamp would strand it in the past.
func (e *Engine) takeNext(deadline Time, clamp bool) func() {
	e.lock()
	defer e.unlock()
	for len(e.queue) > 0 {
		top := e.queue[0]
		if len(e.cancelled) > 0 {
			if _, dead := e.cancelled[top.seq]; dead {
				delete(e.cancelled, top.seq)
				e.pop()
				continue
			}
		}
		if top.at > deadline {
			break
		}
		if top.at < e.now {
			panic("sim: event queue time went backwards")
		}
		e.pop()
		e.now = top.at
		e.fired.Add(1)
		return top.fire
	}
	if clamp && e.now < deadline {
		e.now = deadline
	}
	return nil
}

// takeBatch drains every live event sharing the earliest due timestamp ≤
// deadline into e.batch under a single lock acquisition, advancing the
// clock to that timestamp, and returns the batch size. It returns 0 when
// no live event is due by deadline; with clamp set it then also advances
// the clock to the deadline, atomically with the emptiness check (see
// takeNext for why the atomicity matters in shared mode).
func (e *Engine) takeBatch(deadline Time, clamp bool) int {
	e.lock()
	defer e.unlock()
	// Release the previous batch's closures before reusing the buffer.
	for i := range e.batch {
		e.batch[i].fire = nil
	}
	e.batch = e.batch[:0]
	var at Time
	for len(e.queue) > 0 {
		top := &e.queue[0]
		if len(e.cancelled) > 0 {
			if _, dead := e.cancelled[top.seq]; dead {
				delete(e.cancelled, top.seq)
				e.pop()
				continue
			}
		}
		if len(e.batch) == 0 {
			if top.at > deadline {
				break
			}
			if top.at < e.now {
				panic("sim: event queue time went backwards")
			}
			at = top.at
		} else if top.at != at {
			break
		}
		ev := e.pop()
		e.batch = append(e.batch, batchEntry{seq: ev.seq, fire: ev.fire})
	}
	if len(e.batch) == 0 {
		if clamp && e.now < deadline {
			e.now = deadline
		}
		return 0
	}
	e.now = at
	return len(e.batch)
}

// fireBatch invokes the current batch's callbacks in FIFO (seq) order with
// the lock released, skipping entries cancelled after the drain. It
// reports false when Halt stopped the batch early; the unfired remainder
// is then pushed back onto the queue.
func (e *Engine) fireBatch() bool {
	// Only this (clock-driving) goroutine resizes e.batch, so reading the
	// header unlocked is safe; other goroutines touch entries only through
	// the atomic dead words. In unshared mode nothing races the claim, so
	// plain accesses replace the CAS on the hot path.
	shared := e.lockOn
	for i := 0; i < len(e.batch); i++ {
		if e.halted {
			e.requeueBatch()
			return false
		}
		ent := &e.batch[i]
		if shared {
			if !atomic.CompareAndSwapUint32(&ent.dead, 0, 1) {
				ent.fire = nil // cancelled while waiting in the batch
				continue
			}
		} else if ent.dead != 0 {
			ent.fire = nil
			continue
		} else {
			ent.dead = 1
		}
		fire := ent.fire
		ent.fire = nil
		e.fired.Add(1)
		fire()
	}
	return true
}

// requeueBatch pushes the batch's unclaimed entries back onto the queue
// (Halt interrupted the batch before they fired) and resets the batch, so
// Pending and Cancel see them as ordinarily queued again. Their timestamps
// equal the current clock and their seqs are preserved, so dispatch order
// on resume is unchanged. Already-fired and cancelled entries fail the
// claim CAS and are simply dropped.
func (e *Engine) requeueBatch() {
	e.lock()
	defer e.unlock()
	for i := range e.batch {
		ent := &e.batch[i]
		if atomic.CompareAndSwapUint32(&ent.dead, 0, 1) {
			e.push(event{at: e.now, seq: ent.seq, fire: ent.fire})
		}
		ent.fire = nil
	}
	e.batch = e.batch[:0]
}

// Step executes the single earliest pending event. It reports false when the
// queue is empty.
func (e *Engine) Step() bool {
	fire := e.takeNext(Forever, false)
	if fire == nil {
		return false
	}
	fire()
	return true
}

// Run executes events until the queue drains or Halt is called, in
// same-tick batches. It returns the final clock value.
func (e *Engine) Run() Time {
	e.halted = false
	for !e.halted {
		if e.takeBatch(Forever, false) == 0 {
			break
		}
		if !e.fireBatch() {
			break
		}
	}
	return e.Now()
}

// RunUntil executes events with timestamps ≤ deadline in same-tick
// batches, then sets the clock to deadline (if it has not passed it
// already) and returns. If Halt fires during the run, the clock stays
// where the halt occurred instead of jumping to the deadline.
func (e *Engine) RunUntil(deadline Time) Time {
	e.halted = false
	for !e.halted {
		if e.takeBatch(deadline, true) == 0 {
			break
		}
		if !e.fireBatch() {
			break
		}
	}
	return e.Now()
}

// RunFor advances the clock by d. See RunUntil.
func (e *Engine) RunFor(d Duration) Time { return e.RunUntil(e.Now() + Time(d)) }

// cancel tombstones seq and compacts the heap once tombstones outnumber
// live events. Caller (Handle.Cancel) holds the lock in shared mode.
func (e *Engine) cancel(seq uint64) {
	if e.cancelInBatch(seq) {
		return
	}
	if len(e.queue) == 0 {
		// Nothing is pending, so this seq (and any lingering tombstone)
		// can only refer to already-fired events.
		clear(e.cancelled)
		return
	}
	if _, ok := e.cancelled[seq]; ok {
		return
	}
	if e.cancelled == nil {
		e.cancelled = make(map[uint64]struct{})
	}
	e.cancelled[seq] = struct{}{}
	// len(cancelled) is an upper bound on dead queue entries: a Cancel
	// after the event fired (a documented no-op) still adds a tombstone,
	// which the next compaction drops.
	if len(e.cancelled) > 64 && len(e.cancelled)*2 > len(e.queue) {
		e.compact()
	}
}

// compact rebuilds the heap without cancelled events, releasing their
// closures and — when the live set is much smaller than the backing array —
// the slice capacity too.
func (e *Engine) compact() {
	live := e.queue[:0]
	for _, ev := range e.queue {
		if _, dead := e.cancelled[ev.seq]; !dead {
			live = append(live, ev)
		}
	}
	// Zero the tail so the dropped closures are collectable.
	for i := len(live); i < len(e.queue); i++ {
		e.queue[i] = event{}
	}
	if cap(e.queue) > 1024 && cap(e.queue) > 4*len(live) {
		live = append(make([]event, 0, len(live)), live...)
	}
	e.queue = live
	// Every tombstone is now either removed from the queue or was stale
	// (its event had already fired); either way the map is done with it.
	clear(e.cancelled)
	for i := (len(e.queue) - 2) / 4; i >= 0; i-- {
		e.down(i)
	}
}

// cancelInBatch handles cancellation of an event already drained into the
// current dispatch batch. It reports whether seq was found there; the CAS
// against the run loop decides whether the cancel lands — losing the race
// means the event is firing right now, which is the documented fired-event
// no-op (and must not leave a tombstone behind). Caller holds the engine
// lock, which serializes this scan against batch resizing in takeBatch and
// requeueBatch; entry seqs are immutable once appended and the dead words
// are atomic, so racing the unlocked run loop is safe.
func (e *Engine) cancelInBatch(seq uint64) bool {
	for i := range e.batch {
		if e.batch[i].seq == seq {
			atomic.CompareAndSwapUint32(&e.batch[i].dead, 0, 1)
			return true
		}
	}
	return false
}

// --- 4-ary value heap, ordered by (at, seq) ---

func lessEv(a, b *event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

func (e *Engine) push(ev event) {
	e.queue = append(e.queue, ev)
	e.up(len(e.queue) - 1)
}

func (e *Engine) pop() event {
	top := e.queue[0]
	n := len(e.queue) - 1
	e.queue[0] = e.queue[n]
	e.queue[n] = event{}
	e.queue = e.queue[:n]
	if n > 1 {
		e.down(0)
	}
	return top
}

// up and down sift by hole insertion rather than pairwise swaps: the moving
// event rides in a temporary while displaced entries shift into the hole,
// writing each slot once instead of three times per level. The element
// layout produced is identical to a swap-based sift, so heap order (and
// with it trace determinism) is unchanged.
func (e *Engine) up(i int) {
	ev := e.queue[i]
	for i > 0 {
		parent := (i - 1) / 4
		if !lessEv(&ev, &e.queue[parent]) {
			break
		}
		e.queue[i] = e.queue[parent]
		i = parent
	}
	e.queue[i] = ev
}

func (e *Engine) down(i int) {
	n := len(e.queue)
	ev := e.queue[i]
	for {
		first := 4*i + 1
		if first >= n {
			break
		}
		best := first
		last := first + 4
		if last > n {
			last = n
		}
		for c := first + 1; c < last; c++ {
			if lessEv(&e.queue[c], &e.queue[best]) {
				best = c
			}
		}
		if !lessEv(&e.queue[best], &ev) {
			break
		}
		e.queue[i] = e.queue[best]
		i = best
	}
	e.queue[i] = ev
}
