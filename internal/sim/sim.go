// Package sim provides a deterministic discrete-event simulation kernel.
//
// Every timed subsystem in this repository — the WAN model, disks, transfer
// protocols, provisioning pipelines, billing pollers, monitoring agents —
// runs on top of a sim.Engine. The engine owns a virtual clock and a pending
// event queue ordered by (time, sequence). Determinism is guaranteed: two
// runs with the same seed and same schedule order produce identical traces,
// which is what makes the benchmark tables reproducible.
//
// The queue is a 4-ary heap over a value slice rather than a binary heap of
// event pointers: scheduling allocates nothing beyond amortized slice
// growth, the shallower tree halves the sift depth, and sift comparisons
// stay within one or two cache lines of siblings. Cancellation is lazy with
// compaction — cancelled events are tombstoned and physically reclaimed
// either on pop or, once they outnumber live events, by an O(n) rebuild —
// so a schedule-heavy workload that cancels most of its timers (retry
// timers, timeouts that rarely fire) cannot grow the heap without bound.
package sim

import (
	"fmt"
	"math"
	"time"
)

// Time is a point in virtual time, measured in seconds from the start of the
// simulation. Virtual time has no relation to wall-clock time; a petabyte
// transfer simulates in milliseconds of real time.
type Time float64

// Duration is a span of virtual time in seconds.
type Duration = float64

// Common durations, in seconds.
const (
	Microsecond Duration = 1e-6
	Millisecond Duration = 1e-3
	Second      Duration = 1
	Minute      Duration = 60
	Hour        Duration = 3600
	Day         Duration = 86400
	Week        Duration = 7 * 86400
)

// Forever is a sentinel time later than any reachable event.
const Forever Time = Time(math.MaxFloat64)

// String renders a Time as d/h/m/s for readable traces.
func (t Time) String() string {
	s := float64(t)
	switch {
	case s >= Day:
		return fmt.Sprintf("%.2fd", s/Day)
	case s >= Hour:
		return fmt.Sprintf("%.2fh", s/Hour)
	case s >= Minute:
		return fmt.Sprintf("%.2fm", s/Minute)
	default:
		return fmt.Sprintf("%.3fs", s)
	}
}

// AsWall converts virtual seconds to a time.Duration for reporting.
func (t Time) AsWall() time.Duration { return time.Duration(float64(t) * float64(time.Second)) }

// event is one scheduled callback, stored by value in the heap slice.
type event struct {
	at   Time
	seq  uint64 // tie-break: FIFO among equal timestamps; unique per event
	fire func()
}

// Handle identifies a scheduled event so it can be cancelled. The zero
// Handle is inert: Cancel is a no-op and Cancelled reports false. The
// cancelled bit lives in the Handle value itself, so copies of a Handle do
// not observe each other's Cancel calls (the engine-side effect — the event
// not firing — is shared regardless of which copy cancelled it).
type Handle struct {
	e         *Engine
	seq       uint64
	cancelled bool
}

// Cancel prevents the event from firing and releases its heap slot (at the
// latest, when tombstones outnumber live events and trigger compaction).
// Safe to call multiple times and after the event has fired (then it is a
// no-op).
func (h *Handle) Cancel() {
	if h.e == nil || h.cancelled {
		return
	}
	h.cancelled = true
	h.e.cancel(h.seq)
}

// Cancelled reports whether Cancel was called on this Handle.
func (h Handle) Cancelled() bool { return h.cancelled }

// Engine is the discrete-event scheduler. The zero value is not usable; use
// NewEngine.
type Engine struct {
	now Time
	// queue is a 4-ary min-heap ordered by (at, seq): children of node i
	// live at 4i+1..4i+4.
	queue []event
	// cancelled holds seqs awaiting reclaim; entries are deleted as their
	// events are skipped on pop or swept by compaction, so the map stays
	// bounded by the compaction threshold, not by cancel traffic. Its
	// length is the (upper-bound) count of cancelled events still queued.
	cancelled map[uint64]struct{}
	seq       uint64
	rng       *RNG
	trace     func(t Time, msg string)
	fired     uint64
	halted    bool
}

// NewEngine returns an engine with its clock at zero and a deterministic RNG
// seeded with seed.
func NewEngine(seed uint64) *Engine {
	return &Engine{rng: NewRNG(seed)}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// RNG returns the engine's deterministic random source.
func (e *Engine) RNG() *RNG { return e.rng }

// Fired returns the number of events executed so far.
func (e *Engine) Fired() uint64 { return e.fired }

// Pending returns the number of live (non-cancelled) events still queued.
// The count is exact except after Cancel calls on already-fired events
// (a documented no-op): each leaves a stale tombstone that under-counts
// Pending by one until the next compaction sweeps it away.
func (e *Engine) Pending() int {
	if n := len(e.queue) - len(e.cancelled); n > 0 {
		return n
	}
	return 0
}

// SetTrace installs a trace sink invoked by Tracef. A nil sink disables
// tracing.
func (e *Engine) SetTrace(fn func(t Time, msg string)) { e.trace = fn }

// Tracef emits a trace line if tracing is enabled.
func (e *Engine) Tracef(format string, args ...interface{}) {
	if e.trace != nil {
		e.trace(e.now, fmt.Sprintf(format, args...))
	}
}

// At schedules fire to run at absolute time t. Scheduling in the past (t <
// Now) panics: that is always a logic bug in a discrete-event model.
func (e *Engine) At(t Time, fire func()) Handle {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling into the past: at=%v now=%v", t, e.now))
	}
	seq := e.seq
	e.seq++
	e.push(event{at: t, seq: seq, fire: fire})
	return Handle{e: e, seq: seq}
}

// After schedules fire to run d seconds from now. Negative d panics.
func (e *Engine) After(d Duration, fire func()) Handle {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	return e.At(e.now+Time(d), fire)
}

// Every schedules fire to run every period seconds, starting one period from
// now, until the returned Ticker is stopped or the engine halts.
func (e *Engine) Every(period Duration, fire func()) *Ticker {
	if period <= 0 {
		panic("sim: non-positive ticker period")
	}
	tk := &Ticker{engine: e, period: period, fire: fire}
	tk.schedule()
	return tk
}

// Ticker is a repeating event created by Every.
type Ticker struct {
	engine  *Engine
	period  Duration
	fire    func()
	handle  Handle
	stopped bool
}

func (tk *Ticker) schedule() {
	tk.handle = tk.engine.After(tk.period, func() {
		if tk.stopped {
			return
		}
		tk.fire()
		if !tk.stopped {
			tk.schedule()
		}
	})
}

// Stop cancels future ticks.
func (tk *Ticker) Stop() {
	tk.stopped = true
	tk.handle.Cancel()
}

// Halt stops the run loop after the current event returns.
func (e *Engine) Halt() { e.halted = true }

// Step executes the single earliest pending event. It reports false when the
// queue is empty.
func (e *Engine) Step() bool {
	for len(e.queue) > 0 {
		ev := e.pop()
		if len(e.cancelled) > 0 {
			if _, dead := e.cancelled[ev.seq]; dead {
				delete(e.cancelled, ev.seq)
				continue
			}
		}
		if ev.at < e.now {
			panic("sim: event queue time went backwards")
		}
		e.now = ev.at
		e.fired++
		ev.fire()
		return true
	}
	return false
}

// Run executes events until the queue drains or Halt is called. It returns
// the final clock value.
func (e *Engine) Run() Time {
	e.halted = false
	for !e.halted && e.Step() {
	}
	return e.now
}

// RunUntil executes events with timestamps ≤ deadline, then sets the clock
// to deadline (if it has not passed it already) and returns.
func (e *Engine) RunUntil(deadline Time) Time {
	e.halted = false
	for !e.halted {
		// Peek at the earliest live event.
		at, ok := e.peek()
		if !ok || at > deadline {
			break
		}
		e.Step()
	}
	if e.now < deadline {
		e.now = deadline
	}
	return e.now
}

// RunFor advances the clock by d. See RunUntil.
func (e *Engine) RunFor(d Duration) Time { return e.RunUntil(e.now + Time(d)) }

// peek returns the timestamp of the earliest live event, discarding any
// cancelled events that have reached the top of the heap.
func (e *Engine) peek() (Time, bool) {
	for len(e.queue) > 0 {
		if len(e.cancelled) > 0 {
			if _, dead := e.cancelled[e.queue[0].seq]; dead {
				delete(e.cancelled, e.queue[0].seq)
				e.pop()
				continue
			}
		}
		return e.queue[0].at, true
	}
	return 0, false
}

// cancel tombstones seq and compacts the heap once tombstones outnumber
// live events.
func (e *Engine) cancel(seq uint64) {
	if len(e.queue) == 0 {
		// Nothing is pending, so this seq (and any lingering tombstone)
		// can only refer to already-fired events.
		clear(e.cancelled)
		return
	}
	if _, ok := e.cancelled[seq]; ok {
		return
	}
	if e.cancelled == nil {
		e.cancelled = make(map[uint64]struct{})
	}
	e.cancelled[seq] = struct{}{}
	// len(cancelled) is an upper bound on dead queue entries: a Cancel
	// after the event fired (a documented no-op) still adds a tombstone,
	// which the next compaction drops.
	if len(e.cancelled) > 64 && len(e.cancelled)*2 > len(e.queue) {
		e.compact()
	}
}

// compact rebuilds the heap without cancelled events, releasing their
// closures and — when the live set is much smaller than the backing array —
// the slice capacity too.
func (e *Engine) compact() {
	live := e.queue[:0]
	for _, ev := range e.queue {
		if _, dead := e.cancelled[ev.seq]; !dead {
			live = append(live, ev)
		}
	}
	// Zero the tail so the dropped closures are collectable.
	for i := len(live); i < len(e.queue); i++ {
		e.queue[i] = event{}
	}
	if cap(e.queue) > 1024 && cap(e.queue) > 4*len(live) {
		live = append(make([]event, 0, len(live)), live...)
	}
	e.queue = live
	// Every tombstone is now either removed from the queue or was stale
	// (its event had already fired); either way the map is done with it.
	clear(e.cancelled)
	for i := (len(e.queue) - 2) / 4; i >= 0; i-- {
		e.down(i)
	}
}

// --- 4-ary value heap, ordered by (at, seq) ---

func (e *Engine) less(i, j int) bool {
	a, b := &e.queue[i], &e.queue[j]
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

func (e *Engine) push(ev event) {
	e.queue = append(e.queue, ev)
	e.up(len(e.queue) - 1)
}

func (e *Engine) pop() event {
	top := e.queue[0]
	n := len(e.queue) - 1
	e.queue[0] = e.queue[n]
	e.queue[n] = event{}
	e.queue = e.queue[:n]
	if n > 1 {
		e.down(0)
	}
	return top
}

func (e *Engine) up(i int) {
	for i > 0 {
		parent := (i - 1) / 4
		if !e.less(i, parent) {
			return
		}
		e.queue[i], e.queue[parent] = e.queue[parent], e.queue[i]
		i = parent
	}
}

func (e *Engine) down(i int) {
	n := len(e.queue)
	for {
		first := 4*i + 1
		if first >= n {
			return
		}
		best := first
		last := first + 4
		if last > n {
			last = n
		}
		for c := first + 1; c < last; c++ {
			if e.less(c, best) {
				best = c
			}
		}
		if !e.less(best, i) {
			return
		}
		e.queue[i], e.queue[best] = e.queue[best], e.queue[i]
		i = best
	}
}
