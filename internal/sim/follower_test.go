package sim

import (
	"sync"
	"testing"
	"time"
)

// waitFor polls until cond holds or the wall deadline passes.
func waitFor(t *testing.T, d time.Duration, cond func() bool, msg string) {
	t.Helper()
	deadline := time.Now().Add(d)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal(msg)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestFollowerTracksTargets: the follower advances exactly to each
// published target and never past it.
func TestFollowerTracksTargets(t *testing.T) {
	e := NewEngine(11)
	var mu sync.Mutex
	ticks := 0
	e.Every(Minute, func() { mu.Lock(); ticks++; mu.Unlock() })

	f := StartFollower(e, 0, time.Millisecond)
	defer f.Stop()

	f.SetTarget(Time(5 * Minute))
	waitFor(t, 5*time.Second, func() bool { return e.Now() >= Time(5*Minute) },
		"follower never reached the first target")
	if now := e.Now(); now != Time(5*Minute) {
		t.Fatalf("follower overshot the target: %v", now)
	}
	// The clock holds still with no fresh target.
	time.Sleep(10 * time.Millisecond)
	if now := e.Now(); now != Time(5*Minute) {
		t.Fatalf("clock moved without a new target: %v", now)
	}
	mu.Lock()
	got := ticks
	mu.Unlock()
	if got != 5 {
		t.Fatalf("minute ticker fired %d times by %v, want 5", got, e.Now())
	}

	f.SetTarget(Time(7 * Minute))
	waitFor(t, 5*time.Second, func() bool { return e.Now() >= Time(7*Minute) },
		"follower never reached the second target")
	if now := e.Now(); now != Time(7*Minute) {
		t.Fatalf("follower overshot the second target: %v", now)
	}
}

// TestFollowerIgnoresStaleTargets: published targets behind the clock are
// dropped — virtual time never runs backwards.
func TestFollowerIgnoresStaleTargets(t *testing.T) {
	e := NewEngine(12)
	f := StartFollower(e, 0, time.Millisecond)
	defer f.Stop()

	f.SetTarget(100)
	waitFor(t, 5*time.Second, func() bool { return e.Now() >= 100 },
		"follower never reached 100")
	f.SetTarget(40) // stale
	time.Sleep(10 * time.Millisecond)
	if now := e.Now(); now != 100 {
		t.Fatalf("stale target moved the clock: %v", now)
	}
	if f.Target() != 100 {
		t.Fatalf("stale target replaced the newest one: %v", f.Target())
	}
}

// TestFollowerCatchUpRateCap: with a max catch-up rate the follower closes a
// large lag gradually instead of jumping.
func TestFollowerCatchUpRateCap(t *testing.T) {
	e := NewEngine(13)
	// 1000 virtual seconds per wall second: a 10 000 s lag takes ~10 s to
	// close, so shortly after the target lands the clock must still be far
	// from it.
	f := StartFollower(e, 1000, time.Millisecond)
	defer f.Stop()

	f.SetTarget(10_000)
	time.Sleep(50 * time.Millisecond)
	if now := e.Now(); now == 0 || now >= 10_000 {
		t.Fatalf("rate-capped follower at %v after 50 ms; want 0 < now < 10000", now)
	}
	if f.Lag() == 0 {
		t.Fatal("lag reported zero while still catching up")
	}
}

// TestFollowerStopHaltsAdvance mirrors the Driver contract: after Stop the
// clock no longer moves even with a pending target.
func TestFollowerStopHaltsAdvance(t *testing.T) {
	e := NewEngine(14)
	f := StartFollower(e, 0, time.Millisecond)
	f.SetTarget(50)
	waitFor(t, 5*time.Second, func() bool { return e.Now() >= 50 }, "never reached 50")
	f.Stop()
	f.SetTarget(500)
	at := e.Now()
	time.Sleep(20 * time.Millisecond)
	if e.Now() != at {
		t.Fatalf("clock moved after Stop: %v -> %v", at, e.Now())
	}
}

// TestClockSourceInterface pins that both drivers satisfy ClockSource.
func TestClockSourceInterface(t *testing.T) {
	e1, e2 := NewEngine(1), NewEngine(2)
	var sources []ClockSource
	sources = append(sources, StartDriver(e1, 1000, time.Millisecond))
	sources = append(sources, StartFollower(e2, 0, time.Millisecond))
	for i, s := range sources {
		if s.Engine() == nil {
			t.Fatalf("source %d has no engine", i)
		}
		s.Stop()
		s.Stop() // idempotent
	}
}
