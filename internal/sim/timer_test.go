package sim

import "testing"

func TestTimerFiresAndRearms(t *testing.T) {
	e := NewEngine(1)
	var times []Time
	var tm *Timer
	tm = NewTimer(e, func() {
		times = append(times, e.Now())
		if len(times) < 3 {
			tm.Reset(2)
		}
	})
	tm.Reset(1)
	e.Run()
	want := []Time{1, 3, 5}
	if len(times) != 3 {
		t.Fatalf("fired %d times, want 3", len(times))
	}
	for i := range want {
		if times[i] != want[i] {
			t.Fatalf("fire times = %v, want %v", times, want)
		}
	}
	if tm.Pending() {
		t.Fatal("Pending = true after final fire")
	}
}

func TestTimerResetSupersedesPending(t *testing.T) {
	e := NewEngine(1)
	fired := 0
	tm := NewTimer(e, func() { fired++ })
	tm.Reset(1)
	tm.Reset(10) // must cancel the t=1 expiry
	e.RunUntil(5)
	if fired != 0 {
		t.Fatalf("superseded expiry fired (%d fires by t=5)", fired)
	}
	e.RunUntil(20)
	if fired != 1 {
		t.Fatalf("fired %d times, want exactly 1 at t=10", fired)
	}
	if e.Pending() != 0 {
		t.Fatalf("Pending = %d after run, want 0", e.Pending())
	}
}

func TestTimerStop(t *testing.T) {
	e := NewEngine(1)
	tm := NewTimer(e, func() { t.Fatal("stopped timer fired") })
	tm.Reset(1)
	if !tm.Stop() {
		t.Fatal("Stop() = false with expiry pending")
	}
	if tm.Stop() {
		t.Fatal("second Stop() = true")
	}
	e.RunUntil(10)
}

// TestTimerResetWithinSameBatch: resetting a timer whose expiry sits later
// in the currently dispatching batch must cancel that expiry in place.
func TestTimerResetWithinSameBatch(t *testing.T) {
	e := NewEngine(1)
	var got []string
	tm := NewTimer(e, func() { got = append(got, "timer") })
	e.At(5, func() {
		got = append(got, "first")
		tm.Reset(3) // timer's t=5 expiry is in this batch, unfired
	})
	tm.ResetAt(5)
	e.Run()
	if len(got) != 2 || got[0] != "first" || got[1] != "timer" {
		t.Fatalf("order = %v, want [first timer]", got)
	}
	if e.Now() != 8 {
		t.Fatalf("clock = %v, want 8 (rescheduled expiry)", e.Now())
	}
}

// TestTimerSteadyStateAllocs pins the pooling contract: once constructed,
// a Reset/fire cycle allocates nothing (amortized heap-slice growth
// aside), versus one closure per schedule for the Handle pattern.
func TestTimerSteadyStateAllocs(t *testing.T) {
	e := NewEngine(1)
	tm := NewTimer(e, func() {})
	// Warm the heap slice.
	tm.Reset(1)
	e.Run()
	allocs := testing.AllocsPerRun(1000, func() {
		tm.Reset(1)
		e.Run()
	})
	if allocs > 0 {
		t.Fatalf("steady-state Reset/fire allocates %v per op, want 0", allocs)
	}
}
