package sim

import "testing"

// BenchmarkEngineChurn exercises the event queue the way long simulations
// do: a pool of outstanding timers where every firing reschedules itself,
// and most firings also cancel-and-replace another random timer. ns/op and
// allocs/op are per fired event; the cancel/replace traffic is what
// punishes queues that let cancelled events linger until their timestamp.
func BenchmarkEngineChurn(b *testing.B) {
	b.ReportAllocs()
	e := NewEngine(2012)
	rng := NewRNG(7)
	const outstanding = 4096
	handles := make([]Handle, outstanding)
	fired := 0
	var schedule func(slot int) Handle
	schedule = func(slot int) Handle {
		return e.After(rng.Exp(1.0), func() {
			fired++
			if fired >= b.N {
				e.Halt()
				return
			}
			if victim := rng.Intn(outstanding); victim != slot {
				handles[victim].Cancel()
				handles[victim] = schedule(victim)
			}
			handles[slot] = schedule(slot)
		})
	}
	b.ResetTimer()
	for i := range handles {
		handles[i] = schedule(i)
	}
	e.Run()
}

// BenchmarkEngineScheduleDrain measures the pure schedule-then-pop path
// with no cancellations: b.N events pushed at random times, then drained.
func BenchmarkEngineScheduleDrain(b *testing.B) {
	b.ReportAllocs()
	e := NewEngine(2012)
	rng := NewRNG(11)
	fire := func() {}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.After(rng.Float64()*1000, fire)
	}
	e.Run()
}
