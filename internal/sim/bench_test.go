package sim

import "testing"

// BenchmarkEngineChurn exercises the event queue the way long simulations
// do: a pool of outstanding timers where every firing reschedules itself,
// and most firings also cancel-and-replace another random timer. ns/op and
// allocs/op are per fired event; the cancel/replace traffic is what
// punishes queues that let cancelled events linger until their timestamp.
func BenchmarkEngineChurn(b *testing.B) {
	b.ReportAllocs()
	e := NewEngine(2012)
	rng := NewRNG(7)
	const outstanding = 4096
	handles := make([]Handle, outstanding)
	fired := 0
	var schedule func(slot int) Handle
	schedule = func(slot int) Handle {
		return e.After(rng.Exp(1.0), func() {
			fired++
			if fired >= b.N {
				e.Halt()
				return
			}
			if victim := rng.Intn(outstanding); victim != slot {
				handles[victim].Cancel()
				handles[victim] = schedule(victim)
			}
			handles[slot] = schedule(slot)
		})
	}
	b.ResetTimer()
	for i := range handles {
		handles[i] = schedule(i)
	}
	e.Run()
}

// BenchmarkEngineChurnPooled is the churn workload rebuilt on pooled
// Timers: the same outstanding-pool cancel-and-replace shape, but every
// reschedule is a Timer.Reset reusing the closure allocated at NewTimer.
// Compare against BenchmarkEngineChurn to see what the pooling discipline
// buys — the per-schedule closure allocations drop to zero.
func BenchmarkEngineChurnPooled(b *testing.B) {
	b.ReportAllocs()
	e := NewEngine(2012)
	rng := NewRNG(7)
	const outstanding = 4096
	timers := make([]*Timer, outstanding)
	fired := 0
	for i := range timers {
		slot := i
		timers[slot] = NewTimer(e, func() {
			fired++
			if fired >= b.N {
				e.Halt()
				return
			}
			if victim := rng.Intn(outstanding); victim != slot {
				timers[victim].Reset(rng.Exp(1.0))
			}
			timers[slot].Reset(rng.Exp(1.0))
		})
	}
	b.ResetTimer()
	for i := range timers {
		timers[i].Reset(rng.Exp(1.0))
	}
	e.Run()
}

// BenchmarkShardedChurn is the churn workload spread over an 8-shard
// ShardSet with pooled timers, shards advancing in lockstep through
// RunUntil windows. ns/op is per fired event across all shards; on
// multi-core hosts the shards advance concurrently.
func BenchmarkShardedChurn(b *testing.B) {
	b.ReportAllocs()
	const k = 8
	const outstanding = 4096
	set := NewShardSet(2012, k)
	perShard := outstanding / k
	quota := b.N/k + 1
	for si := 0; si < k; si++ {
		e := set.ShardAt(si)
		rng := NewRNG(uint64(7 + si))
		timers := make([]*Timer, perShard)
		fired := 0
		for i := range timers {
			slot := i
			timers[slot] = NewTimer(e, func() {
				fired++
				if fired >= quota {
					e.Halt()
					return
				}
				if victim := rng.Intn(perShard); victim != slot {
					timers[victim].Reset(rng.Exp(1.0))
				}
				timers[slot].Reset(rng.Exp(1.0))
			})
		}
		for i := range timers {
			timers[i].Reset(rng.Exp(1.0))
		}
	}
	b.ResetTimer()
	for set.Fired() < uint64(b.N) {
		set.RunFor(64)
	}
}

// BenchmarkEngineScheduleDrain measures the pure schedule-then-pop path
// with no cancellations: b.N events pushed at random times, then drained.
func BenchmarkEngineScheduleDrain(b *testing.B) {
	b.ReportAllocs()
	e := NewEngine(2012)
	rng := NewRNG(11)
	fire := func() {}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.After(rng.Float64()*1000, fire)
	}
	e.Run()
}

// BenchmarkSameTickBatch measures dispatch of synchronized-timer ticks —
// 1024 events per timestamp — on a shared (locked) engine, the shape the
// batched run loop is built for: one lock round-trip drains the whole
// tick instead of one per event.
func BenchmarkSameTickBatch(b *testing.B) {
	benchSameTick(b, func(e *Engine) { e.Run() })
}

// BenchmarkSameTickStepped is the same workload drained through the
// single-event Step path — the per-event lock cost the batch amortizes.
func BenchmarkSameTickStepped(b *testing.B) {
	benchSameTick(b, func(e *Engine) {
		for e.Step() {
		}
	})
}

func benchSameTick(b *testing.B, drain func(*Engine)) {
	b.ReportAllocs()
	e := NewEngine(2012)
	e.Share()
	runSameTick(b, e, drain)
}

func runSameTick(b *testing.B, e *Engine, drain func(*Engine)) {
	fire := func() {}
	const width = 1024
	b.ResetTimer()
	scheduled := 0
	tick := Time(0)
	for scheduled < b.N {
		tick++
		n := width
		if rest := b.N - scheduled; rest < n {
			n = rest
		}
		for j := 0; j < n; j++ {
			e.At(tick, fire)
		}
		scheduled += n
		// Drain the tick before refilling, so the heap stays at tick
		// width and the measurement is dispatch, not heap growth.
		drain(e)
	}
}
