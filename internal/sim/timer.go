package sim

import "fmt"

// Timer is a rescheduleable one-shot event with a pre-allocated callback:
// the pooled-payload primitive for hot schedule/cancel paths. Where the
// Handle pattern allocates a fresh closure per schedule (retry timers,
// per-request timeouts), a Timer allocates once at NewTimer and then
// Reset/Stop cycle it through the queue with zero steady-state allocations
// — the heap stores the same func value every time.
//
// A Timer is owned by a single goroutine: scenario code driving the clock,
// or callbacks firing on the clock-driving goroutine. Its pending state is
// deliberately not shared-mode-safe — cancelling from a foreign goroutine
// while the callback may be firing is inherently racy (the documented
// fired-event no-op), and the per-schedule Handle already serves that
// case. The race detector will flag cross-goroutine misuse.
type Timer struct {
	e    *Engine
	fire func() // wrapper around the user callback; allocated once

	seq     uint64
	pending bool
}

// NewTimer returns a stopped Timer that will invoke fire each time it
// expires. Arm it with Reset.
func NewTimer(e *Engine, fire func()) *Timer {
	t := &Timer{e: e}
	t.fire = func() {
		t.pending = false
		fire()
	}
	return t
}

// Reset arms the timer to fire d seconds from now, first cancelling any
// still-pending expiry. Negative d panics. Unlike time.Timer.Reset there
// is no drained-channel subtlety: the callback either already ran (then
// this is a fresh schedule) or is cancelled here and never runs.
func (t *Timer) Reset(d Duration) {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative timer delay %v", d))
	}
	t.e.lock()
	defer t.e.unlock()
	if t.pending {
		t.e.cancel(t.seq)
	}
	t.seq = t.e.at(t.e.now+Time(d), t.fire).seq
	t.pending = true
}

// ResetAt arms the timer to fire at absolute time at. See Reset.
func (t *Timer) ResetAt(at Time) {
	t.e.lock()
	defer t.e.unlock()
	if t.pending {
		t.e.cancel(t.seq)
	}
	t.seq = t.e.at(at, t.fire).seq
	t.pending = true
}

// Stop cancels the pending expiry, if any, and reports whether one was
// pending.
func (t *Timer) Stop() bool {
	t.e.lock()
	defer t.e.unlock()
	if !t.pending {
		return false
	}
	t.e.cancel(t.seq)
	t.pending = false
	return true
}

// Pending reports whether an expiry is currently scheduled.
func (t *Timer) Pending() bool {
	t.e.lock()
	defer t.e.unlock()
	return t.pending
}
