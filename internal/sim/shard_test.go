package sim

import (
	"fmt"
	"testing"
	"time"
)

// churnTrace runs a fixed self-rescheduling workload on e and returns the
// (time, draw) trace — a fingerprint of both dispatch order and RNG state.
func churnTrace(e *Engine, n int) []float64 {
	var trace []float64
	var step func()
	step = func() {
		trace = append(trace, float64(e.Now()), e.RNG().Float64())
		if len(trace) < 2*n {
			e.After(e.RNG().Exp(1.0), step)
		}
	}
	e.After(0, step)
	e.Run()
	return trace
}

// TestShardSetK1BitIdentical pins the golden-compatibility contract: a
// K=1 ShardSet's anchor is seeded exactly like a bare engine, so every
// event time and RNG draw matches bit for bit.
func TestShardSetK1BitIdentical(t *testing.T) {
	bare := churnTrace(NewEngine(2012), 500)
	set := NewShardSet(2012, 1)
	sharded := churnTrace(set.Anchor(), 500)
	if len(bare) != len(sharded) {
		t.Fatalf("trace lengths differ: %d vs %d", len(bare), len(sharded))
	}
	for i := range bare {
		if bare[i] != sharded[i] {
			t.Fatalf("K=1 trace diverges at %d: %v vs %v", i, bare[i], sharded[i])
		}
	}
}

func TestShardKeyingStableAndSpread(t *testing.T) {
	set := NewShardSet(1, 8)
	counts := make([]int, 8)
	for i := 0; i < 1000; i++ {
		key := fmt.Sprintf("i-%06d", i)
		a, b := set.ShardIndex(key), set.ShardIndex(key)
		if a != b {
			t.Fatalf("ShardIndex(%q) unstable: %d vs %d", key, a, b)
		}
		if set.Shard(key) != set.ShardAt(a) {
			t.Fatalf("Shard(%q) disagrees with ShardIndex", key)
		}
		counts[a]++
	}
	for i, c := range counts {
		if c < 50 {
			t.Fatalf("shard %d got %d of 1000 keys — hash badly skewed: %v", i, c, counts)
		}
	}
}

// TestShardSetCommonTarget: RunUntil advances every shard to the same
// deadline, events land on their owning shards, and skew is zero at the
// barrier.
func TestShardSetCommonTarget(t *testing.T) {
	set := NewShardSet(7, 4)
	firedOn := make([]int, 4)
	for i := 0; i < 4; i++ {
		i := i
		set.ShardAt(i).At(Time(10+i), func() { firedOn[i]++ })
	}
	set.RunUntil(20)
	if set.Now() != 20 {
		t.Fatalf("Now = %v after RunUntil(20)", set.Now())
	}
	if set.Skew() != 0 {
		t.Fatalf("Skew = %v at barrier, want 0", set.Skew())
	}
	for i, n := range firedOn {
		if n != 1 {
			t.Fatalf("shard %d fired %d events, want 1", i, n)
		}
	}
	if set.Fired() != 4 {
		t.Fatalf("Fired = %d, want 4", set.Fired())
	}
	if set.Pending() != 0 {
		t.Fatalf("Pending = %d, want 0", set.Pending())
	}
}

// TestShardSetParallelDeterminism: the same per-shard workload produces
// identical traces run-to-run even though shards advance concurrently —
// shards share nothing, so goroutine interleaving cannot reorder events.
func TestShardSetParallelDeterminism(t *testing.T) {
	run := func() [][]float64 {
		set := NewShardSet(2012, 4)
		traces := make([][]float64, 4)
		for i := 0; i < 4; i++ {
			i := i
			e := set.ShardAt(i)
			var step func()
			n := 0
			step = func() {
				traces[i] = append(traces[i], float64(e.Now()), e.RNG().Float64())
				n++
				if n < 200 {
					e.After(e.RNG().Exp(0.5), step)
				}
			}
			e.After(0, step)
		}
		for set.Pending() > 0 {
			set.RunFor(10)
		}
		return traces
	}
	a, b := run(), run()
	for i := range a {
		if len(a[i]) != len(b[i]) {
			t.Fatalf("shard %d trace lengths differ: %d vs %d", i, len(a[i]), len(b[i]))
		}
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				t.Fatalf("shard %d trace diverges at %d", i, j)
			}
		}
	}
	// Different shards must not share a stream.
	same := len(a[0]) == len(a[1])
	if same {
		for j := range a[0] {
			if a[0][j] != a[1][j] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("shards 0 and 1 produced identical traces — seed separation broken")
	}
}

func TestShardDriverAdvancesAllShards(t *testing.T) {
	set := NewShardSet(1, 3)
	d := StartShardDriver(set, 1e6, time.Millisecond)
	defer d.Stop()
	if d.Engine() != set.Anchor() {
		t.Fatal("shard driver's Engine() is not the anchor")
	}
	deadline := time.After(10 * time.Second)
	for set.Now() < 1000 {
		select {
		case <-deadline:
			t.Fatalf("set clock stuck at %v", set.Now())
		default:
			time.Sleep(time.Millisecond)
		}
	}
	// Now() is the min across shards, so every shard passed 1000 and the
	// common-target loop kept them within one tick of each other.
}

func TestShardFollowerHoldsAndCatchesUp(t *testing.T) {
	set := NewShardSet(1, 3)
	f := StartShardFollower(set, 0, time.Millisecond)
	defer f.Stop()
	time.Sleep(20 * time.Millisecond)
	if now := set.Now(); now != 0 {
		t.Fatalf("follower moved to %v with no target", now)
	}
	f.SetTarget(500)
	deadline := time.After(10 * time.Second)
	for set.Now() < 500 {
		select {
		case <-deadline:
			t.Fatalf("set clock stuck at %v short of target", set.Now())
		default:
			time.Sleep(time.Millisecond)
		}
	}
	if set.Now() > 500 {
		t.Fatalf("follower overshot target: %v", set.Now())
	}
	if f.Lag() != 0 {
		t.Fatalf("Lag = %v at target", f.Lag())
	}
}
