package sim

import (
	"sync"
	"testing"
	"time"
)

// TestSharedEngineConcurrentScheduling pins the shared-mode contract: many
// goroutines scheduling and cancelling against an engine while one
// goroutine drives the clock. Run with -race.
func TestSharedEngineConcurrentScheduling(t *testing.T) {
	e := NewEngine(1)
	e.Share()

	var fired sync.Map
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() { // the clock driver
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				e.RunFor(10)
			}
		}
	}()
	const writers, perWriter = 8, 200
	for w := 0; w < writers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				key := w*perWriter + i
				h := e.After(Duration(i%7), func() { fired.Store(key, true) })
				if i%5 == 0 {
					h.Cancel()
				}
				_ = e.Now()
				_ = e.Pending()
			}
		}()
	}
	// Let the writers finish, then give the driver time to drain.
	done := make(chan struct{})
	go func() {
		wg.Wait()
		close(done)
	}()
	time.Sleep(50 * time.Millisecond)
	close(stop)
	<-done

	e.Run() // drain whatever is left, single-threaded again
	kept := 0
	fired.Range(func(_, _ any) bool { kept++; return true })
	// 1 in 5 events per writer was cancelled before it could fire; at least
	// the rest must have fired.
	if min := writers * perWriter * 4 / 5; kept < min {
		t.Fatalf("fired %d events, want >= %d", kept, min)
	}
}

// TestSharedModeMatchesUnsharedTrace: enabling the lock must not change
// single-threaded semantics.
func TestSharedModeMatchesUnsharedTrace(t *testing.T) {
	run := func(shared bool) []Time {
		e := NewEngine(9)
		if shared {
			e.Share()
		}
		var trace []Time
		tick := e.Every(3, func() { trace = append(trace, e.Now()) })
		e.After(10, func() { tick.Stop() })
		e.Run()
		return trace
	}
	a, b := run(false), run(true)
	if len(a) != len(b) || len(a) == 0 {
		t.Fatalf("traces differ in length: %v vs %v", a, b)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("traces diverge at %d: %v vs %v", i, a, b)
		}
	}
}

func TestDriverAdvancesClock(t *testing.T) {
	e := NewEngine(3)
	var mu sync.Mutex
	ticks := 0
	e.Every(Minute, func() { mu.Lock(); ticks++; mu.Unlock() })

	// 1 wall ms ≈ 1 simulated minute.
	d := StartDriver(e, 60_000, time.Millisecond)
	deadline := time.After(5 * time.Second)
	for {
		if e.Now() >= Time(10*Minute) {
			break
		}
		select {
		case <-deadline:
			t.Fatalf("driver advanced the clock only to %v in 5 s wall", e.Now())
		default:
			time.Sleep(time.Millisecond)
		}
	}
	d.Stop()
	mu.Lock()
	defer mu.Unlock()
	if ticks < 10 {
		t.Fatalf("minute ticker fired %d times by %v, want >= 10", ticks, e.Now())
	}
}

func TestDriverStopHaltsAdvance(t *testing.T) {
	e := NewEngine(4)
	d := StartDriver(e, 1000, time.Millisecond)
	time.Sleep(10 * time.Millisecond)
	d.Stop()
	at := e.Now()
	time.Sleep(20 * time.Millisecond)
	if e.Now() != at {
		t.Fatalf("clock moved after Stop: %v -> %v", at, e.Now())
	}
}
