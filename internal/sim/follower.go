package sim

import (
	"sync"
	"time"
)

// Follower is the synchronized ClockSource: instead of free-running against
// wall time it advances its engine toward a target virtual time published
// from outside — the console engine's clock, pushed by a coordinator each
// sync interval. The per-tick advance is clamped to the remaining lag, so a
// follower never runs past the newest target: its skew against the
// coordinator is bounded by however much the coordinator advanced since the
// last publication (one sync interval of virtual time) plus at most one
// follower tick of catch-up latency.
//
// Targets are monotonic: a published target earlier than the engine's
// current time is ignored (virtual time cannot run backwards), so a stale
// or duplicate sync is harmless. When no fresh target arrives — a site
// missing its syncs — the follower simply holds the clock still; events
// stop firing rather than drifting, and the engine resumes from where it
// stopped on the next publication.
type Follower struct {
	clock    Clock
	anchor   *Engine
	interval time.Duration
	// maxRate caps catch-up speed in virtual seconds per wall second;
	// <= 0 means unbounded (jump to the target in one tick).
	maxRate float64

	mu     sync.Mutex
	target Time

	stopOnce sync.Once
	stop     chan struct{}
	done     chan struct{}
}

// StartFollower switches e into shared mode and starts the follower
// goroutine: every interval of wall time (<= 0 means 2 ms) the engine is
// advanced toward the newest published target, by at most maxRate virtual
// seconds per wall second (<= 0 for unbounded catch-up). Until the first
// SetTarget the clock holds still.
func StartFollower(e *Engine, maxRate float64, interval time.Duration) *Follower {
	return startFollower(e, e, maxRate, interval)
}

// StartShardFollower is StartFollower over a sharded kernel: each catch-up
// tick advances all shards toward the same published target, so the
// cross-shard skew bound composes with the cross-site one — no shard of
// any site runs past the coordinator's clock. Engine() reports the set's
// anchor shard.
func StartShardFollower(s *ShardSet, maxRate float64, interval time.Duration) *Follower {
	return startFollower(s, s.Anchor(), maxRate, interval)
}

func startFollower(c Clock, anchor *Engine, maxRate float64, interval time.Duration) *Follower {
	if interval <= 0 {
		interval = 2 * time.Millisecond
	}
	c.Share()
	f := &Follower{
		clock: c, anchor: anchor, maxRate: maxRate, interval: interval,
		target: c.Now(),
		stop:   make(chan struct{}), done: make(chan struct{}),
	}
	go f.loop()
	return f
}

// SetTarget publishes a new target virtual time. Targets behind the current
// one are ignored (the clock never runs backwards). Safe from any
// goroutine.
func (f *Follower) SetTarget(t Time) {
	f.mu.Lock()
	if t > f.target {
		f.target = t
	}
	f.mu.Unlock()
}

// Target returns the newest published target.
func (f *Follower) Target() Time {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.target
}

// Lag returns how far the engine's clock trails the newest target, in
// virtual seconds (never negative).
func (f *Follower) Lag() Duration {
	lag := float64(f.Target() - f.clock.Now())
	if lag < 0 {
		return 0
	}
	return lag
}

// Engine implements ClockSource. For a sharded follower it returns the
// anchor shard.
func (f *Follower) Engine() *Engine { return f.anchor }

// Stop implements ClockSource.
func (f *Follower) Stop() {
	f.stopOnce.Do(func() { close(f.stop) })
	<-f.done
}

func (f *Follower) loop() {
	defer close(f.done)
	tick := time.NewTicker(f.interval)
	defer tick.Stop()
	last := time.Now()
	for {
		select {
		case <-f.stop:
			return
		case now := <-tick.C:
			dt := now.Sub(last).Seconds()
			last = now
			target := f.Target()
			at := f.clock.Now()
			lag := float64(target - at)
			if lag <= 0 {
				continue
			}
			if f.maxRate > 0 && dt > 0 {
				if step := dt * f.maxRate; step < lag {
					lag = step
				}
			}
			f.clock.RunUntil(at + Time(lag))
		}
	}
}
