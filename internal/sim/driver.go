package sim

import (
	"sync"
	"time"
)

// Driver advances a shared Engine in wall-clock time: every Interval of
// real time it runs the engine forward by the elapsed wall time multiplied
// by Speedup. This is what turns the discrete-event federation into a live
// service — billing pollers, monitoring sweeps and VM boot timers all fire
// while HTTP handlers schedule against the same clock.
//
// The driver is the engine's single clock-driving goroutine (see the
// shared-mode contract in the package docs); everything else may only
// schedule, cancel and read.
type Driver struct {
	engine   *Engine
	speedup  float64
	interval time.Duration

	stopOnce sync.Once
	stop     chan struct{}
	done     chan struct{}
}

// StartDriver switches e into shared mode and starts a goroutine advancing
// it: speedup is simulated seconds per wall second (<= 0 means 1, i.e.
// real time), interval the wall period between advances (<= 0 means 5 ms).
// Stop the driver before tearing the engine's world down.
func StartDriver(e *Engine, speedup float64, interval time.Duration) *Driver {
	if speedup <= 0 {
		speedup = 1
	}
	if interval <= 0 {
		interval = 5 * time.Millisecond
	}
	e.Share()
	d := &Driver{
		engine: e, speedup: speedup, interval: interval,
		stop: make(chan struct{}), done: make(chan struct{}),
	}
	go d.loop()
	return d
}

func (d *Driver) loop() {
	defer close(d.done)
	tick := time.NewTicker(d.interval)
	defer tick.Stop()
	last := time.Now()
	for {
		select {
		case <-d.stop:
			return
		case now := <-tick.C:
			dt := now.Sub(last).Seconds()
			last = now
			if dt > 0 {
				d.engine.RunFor(dt * d.speedup)
			}
		}
	}
}

// Stop halts the driver and waits for its goroutine to exit. The engine is
// left at whatever virtual time it reached; it remains in shared mode.
// Stop is idempotent.
func (d *Driver) Stop() {
	d.stopOnce.Do(func() { close(d.stop) })
	<-d.done
}
