package sim

import (
	"sync"
	"time"
)

// ClockSource is an engine's single clock-driving goroutine, abstracted:
// something that owns the right to call Run*/Step on a shared Engine and
// advances its virtual clock from the background. Two implementations
// exist:
//
//   - Driver free-runs: virtual time tracks wall time at a fixed speedup,
//     with no reference to any other engine's clock;
//   - Follower advances only toward a target virtual time published from
//     outside (a clock coordinator), never past it — the building block of
//     cross-engine clock sync in the per-site federation topology.
//
// Everything else sharing the engine may only schedule, cancel and read.
type ClockSource interface {
	// Engine returns the engine this source drives.
	Engine() *Engine
	// Stop halts the driving goroutine and waits for it to exit. The
	// engine is left at whatever virtual time it reached. Idempotent.
	Stop()
}

// Driver is the free-running ClockSource: every interval of real time it
// runs the clock forward by the elapsed wall time multiplied by speedup.
// This is what turns the discrete-event federation into a live service —
// billing pollers, monitoring sweeps and VM boot timers all fire while
// HTTP handlers schedule against the same clock. The clock may be a
// single Engine or a ShardSet, whose shards the driver advances to a
// common target each tick.
type Driver struct {
	clock    Clock
	anchor   *Engine
	speedup  float64
	interval time.Duration

	stopOnce sync.Once
	stop     chan struct{}
	done     chan struct{}
}

// StartDriver switches e into shared mode and starts a goroutine advancing
// it: speedup is simulated seconds per wall second (<= 0 means 1, i.e.
// real time), interval the wall period between advances (<= 0 means 5 ms).
// Stop the driver before tearing the engine's world down.
func StartDriver(e *Engine, speedup float64, interval time.Duration) *Driver {
	return startDriver(e, e, speedup, interval)
}

// StartShardDriver is StartDriver over a sharded kernel: every tick
// advances all shards to the same target, so cross-shard skew stays
// bounded by one tick's worth of virtual time. Engine() reports the
// set's anchor shard.
func StartShardDriver(s *ShardSet, speedup float64, interval time.Duration) *Driver {
	return startDriver(s, s.Anchor(), speedup, interval)
}

func startDriver(c Clock, anchor *Engine, speedup float64, interval time.Duration) *Driver {
	if speedup <= 0 {
		speedup = 1
	}
	if interval <= 0 {
		interval = 5 * time.Millisecond
	}
	c.Share()
	d := &Driver{
		clock: c, anchor: anchor, speedup: speedup, interval: interval,
		stop: make(chan struct{}), done: make(chan struct{}),
	}
	go d.loop()
	return d
}

func (d *Driver) loop() {
	defer close(d.done)
	tick := time.NewTicker(d.interval)
	defer tick.Stop()
	last := time.Now()
	for {
		select {
		case <-d.stop:
			return
		case now := <-tick.C:
			dt := now.Sub(last).Seconds()
			last = now
			if dt > 0 {
				d.clock.RunUntil(d.clock.Now() + Time(dt*d.speedup))
			}
		}
	}
}

// Engine implements ClockSource. For a sharded driver it returns the
// anchor shard.
func (d *Driver) Engine() *Engine { return d.anchor }

// Stop halts the driver and waits for its goroutine to exit. The engine is
// left at whatever virtual time it reached; it remains in shared mode.
// Stop is idempotent.
func (d *Driver) Stop() {
	d.stopOnce.Do(func() { close(d.stop) })
	<-d.done
}
