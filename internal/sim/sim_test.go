package sim

import (
	"math"
	"testing"
	"testing/quick"
)

func TestEngineOrdering(t *testing.T) {
	e := NewEngine(1)
	var got []int
	e.At(3, func() { got = append(got, 3) })
	e.At(1, func() { got = append(got, 1) })
	e.At(2, func() { got = append(got, 2) })
	e.Run()
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
	if e.Now() != 3 {
		t.Fatalf("clock = %v, want 3", e.Now())
	}
}

func TestEngineFIFOAtSameTime(t *testing.T) {
	e := NewEngine(1)
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(5, func() { got = append(got, i) })
	}
	e.Run()
	for i := range got {
		if got[i] != i {
			t.Fatalf("same-time events not FIFO: %v", got)
		}
	}
}

func TestEngineAfterAccumulates(t *testing.T) {
	e := NewEngine(1)
	var times []Time
	e.After(1, func() {
		times = append(times, e.Now())
		e.After(2, func() { times = append(times, e.Now()) })
	})
	e.Run()
	if len(times) != 2 || times[0] != 1 || times[1] != 3 {
		t.Fatalf("times = %v, want [1 3]", times)
	}
}

func TestSchedulePastPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic scheduling into the past")
		}
	}()
	e := NewEngine(1)
	e.After(10, func() { e.At(5, func() {}) })
	e.Run()
}

func TestNegativeDelayPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on negative delay")
		}
	}()
	NewEngine(1).After(-1, func() {})
}

func TestCancel(t *testing.T) {
	e := NewEngine(1)
	fired := false
	h := e.After(1, func() { fired = true })
	h.Cancel()
	e.Run()
	if fired {
		t.Fatal("cancelled event fired")
	}
	if !h.Cancelled() {
		t.Fatal("Cancelled() = false after Cancel")
	}
}

func TestCancelAfterFireIsNoop(t *testing.T) {
	e := NewEngine(1)
	h := e.After(1, func() {})
	e.Run()
	h.Cancel() // must not panic
}

func TestRunUntil(t *testing.T) {
	e := NewEngine(1)
	var fired []Time
	for _, at := range []Time{1, 2, 3, 4, 5} {
		at := at
		e.At(at, func() { fired = append(fired, at) })
	}
	e.RunUntil(3)
	if len(fired) != 3 {
		t.Fatalf("fired %d events by t=3, want 3", len(fired))
	}
	if e.Now() != 3 {
		t.Fatalf("clock = %v, want 3", e.Now())
	}
	e.Run()
	if len(fired) != 5 {
		t.Fatalf("fired %d events total, want 5", len(fired))
	}
}

func TestRunUntilAdvancesIdleClock(t *testing.T) {
	e := NewEngine(1)
	e.RunUntil(100)
	if e.Now() != 100 {
		t.Fatalf("clock = %v, want 100 with empty queue", e.Now())
	}
}

func TestTicker(t *testing.T) {
	e := NewEngine(1)
	n := 0
	tk := e.Every(10, func() {
		n++
		if n == 5 {
			e.Halt()
		}
	})
	e.Run()
	tk.Stop()
	if n != 5 {
		t.Fatalf("ticks = %d, want 5", n)
	}
	if e.Now() != 50 {
		t.Fatalf("clock = %v, want 50", e.Now())
	}
}

func TestTickerStop(t *testing.T) {
	e := NewEngine(1)
	n := 0
	var tk *Ticker
	tk = e.Every(1, func() {
		n++
		if n == 3 {
			tk.Stop()
		}
	})
	e.RunUntil(10)
	if n != 3 {
		t.Fatalf("ticks after Stop = %d, want 3", n)
	}
}

func TestHalt(t *testing.T) {
	e := NewEngine(1)
	ran := 0
	e.At(1, func() { ran++; e.Halt() })
	e.At(2, func() { ran++ })
	e.Run()
	if ran != 1 {
		t.Fatalf("ran %d events, want 1 (halted)", ran)
	}
	// Run again resumes.
	e.Run()
	if ran != 2 {
		t.Fatalf("ran %d events after resume, want 2", ran)
	}
}

func TestDeterminismSameSeed(t *testing.T) {
	runTrace := func(seed uint64) []float64 {
		e := NewEngine(seed)
		var trace []float64
		var step func()
		step = func() {
			trace = append(trace, float64(e.Now()))
			if len(trace) < 100 {
				e.After(e.RNG().Exp(1.0), step)
			}
		}
		e.After(0, step)
		e.Run()
		return trace
	}
	a, b := runTrace(42), runTrace(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("traces diverge at %d: %v vs %v", i, a[i], b[i])
		}
	}
	c := runTrace(43)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical traces")
	}
}

func TestTimeString(t *testing.T) {
	cases := []struct {
		t    Time
		want string
	}{
		{Time(0.5), "0.500s"},
		{Time(90), "1.50m"},
		{Time(7200), "2.00h"},
		{Time(2 * Day), "2.00d"},
	}
	for _, c := range cases {
		if got := c.t.String(); got != c.want {
			t.Errorf("Time(%v).String() = %q, want %q", float64(c.t), got, c.want)
		}
	}
}

func TestRNGFloat64Range(t *testing.T) {
	r := NewRNG(7)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64() = %v out of [0,1)", f)
		}
	}
}

func TestRNGIntnRange(t *testing.T) {
	if err := quick.Check(func(seed uint64, n uint16) bool {
		nn := int(n%1000) + 1
		r := NewRNG(seed)
		v := r.Intn(nn)
		return v >= 0 && v < nn
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRNGExpMean(t *testing.T) {
	r := NewRNG(11)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += r.Exp(3.0)
	}
	mean := sum / n
	if math.Abs(mean-3.0) > 0.05 {
		t.Fatalf("Exp mean = %v, want ~3.0", mean)
	}
}

func TestRNGNormalMoments(t *testing.T) {
	r := NewRNG(13)
	const n = 200000
	sum, sumsq := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := r.Normal(10, 2)
		sum += v
		sumsq += v * v
	}
	mean := sum / n
	variance := sumsq/n - mean*mean
	if math.Abs(mean-10) > 0.05 {
		t.Fatalf("Normal mean = %v, want ~10", mean)
	}
	if math.Abs(math.Sqrt(variance)-2) > 0.05 {
		t.Fatalf("Normal stddev = %v, want ~2", math.Sqrt(variance))
	}
}

func TestRNGParetoTail(t *testing.T) {
	r := NewRNG(17)
	for i := 0; i < 10000; i++ {
		v := r.Pareto(2.0, 1.5)
		if v < 2.0 {
			t.Fatalf("Pareto(2,1.5) = %v below scale", v)
		}
	}
}

func TestRNGPermIsPermutation(t *testing.T) {
	if err := quick.Check(func(seed uint64) bool {
		r := NewRNG(seed)
		p := r.Perm(50)
		seen := make([]bool, 50)
		for _, v := range p {
			if v < 0 || v >= 50 || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestRNGBernoulliEdges(t *testing.T) {
	r := NewRNG(1)
	for i := 0; i < 100; i++ {
		if r.Bernoulli(0) {
			t.Fatal("Bernoulli(0) returned true")
		}
		if !r.Bernoulli(1) {
			t.Fatal("Bernoulli(1) returned false")
		}
	}
}

func TestRNGForkIndependence(t *testing.T) {
	a := NewRNG(5)
	b := a.Fork()
	// Drawing from b must not change a's future relative to a clone.
	c := NewRNG(5)
	c.Uint64() // same draw Fork consumed
	for i := 0; i < 10; i++ {
		b.Uint64()
	}
	for i := 0; i < 100; i++ {
		if a.Uint64() != c.Uint64() {
			t.Fatal("Fork perturbed parent stream")
		}
	}
}

func TestPendingAndFiredCounters(t *testing.T) {
	e := NewEngine(1)
	e.After(1, func() {})
	e.After(2, func() {})
	if e.Pending() != 2 {
		t.Fatalf("Pending = %d, want 2", e.Pending())
	}
	e.Run()
	if e.Fired() != 2 {
		t.Fatalf("Fired = %d, want 2", e.Fired())
	}
	if e.Pending() != 0 {
		t.Fatalf("Pending after run = %d, want 0", e.Pending())
	}
}
