package sim

import (
	"math"
	"testing"
	"testing/quick"
)

func TestEngineOrdering(t *testing.T) {
	e := NewEngine(1)
	var got []int
	e.At(3, func() { got = append(got, 3) })
	e.At(1, func() { got = append(got, 1) })
	e.At(2, func() { got = append(got, 2) })
	e.Run()
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
	if e.Now() != 3 {
		t.Fatalf("clock = %v, want 3", e.Now())
	}
}

func TestEngineFIFOAtSameTime(t *testing.T) {
	e := NewEngine(1)
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(5, func() { got = append(got, i) })
	}
	e.Run()
	for i := range got {
		if got[i] != i {
			t.Fatalf("same-time events not FIFO: %v", got)
		}
	}
}

func TestEngineAfterAccumulates(t *testing.T) {
	e := NewEngine(1)
	var times []Time
	e.After(1, func() {
		times = append(times, e.Now())
		e.After(2, func() { times = append(times, e.Now()) })
	})
	e.Run()
	if len(times) != 2 || times[0] != 1 || times[1] != 3 {
		t.Fatalf("times = %v, want [1 3]", times)
	}
}

func TestSchedulePastPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic scheduling into the past")
		}
	}()
	e := NewEngine(1)
	e.After(10, func() { e.At(5, func() {}) })
	e.Run()
}

func TestNegativeDelayPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on negative delay")
		}
	}()
	NewEngine(1).After(-1, func() {})
}

func TestCancel(t *testing.T) {
	e := NewEngine(1)
	fired := false
	h := e.After(1, func() { fired = true })
	h.Cancel()
	e.Run()
	if fired {
		t.Fatal("cancelled event fired")
	}
	if !h.Cancelled() {
		t.Fatal("Cancelled() = false after Cancel")
	}
}

func TestCancelAfterFireIsNoop(t *testing.T) {
	e := NewEngine(1)
	h := e.After(1, func() {})
	e.Run()
	h.Cancel() // must not panic
}

func TestRunUntil(t *testing.T) {
	e := NewEngine(1)
	var fired []Time
	for _, at := range []Time{1, 2, 3, 4, 5} {
		at := at
		e.At(at, func() { fired = append(fired, at) })
	}
	e.RunUntil(3)
	if len(fired) != 3 {
		t.Fatalf("fired %d events by t=3, want 3", len(fired))
	}
	if e.Now() != 3 {
		t.Fatalf("clock = %v, want 3", e.Now())
	}
	e.Run()
	if len(fired) != 5 {
		t.Fatalf("fired %d events total, want 5", len(fired))
	}
}

func TestRunUntilAdvancesIdleClock(t *testing.T) {
	e := NewEngine(1)
	e.RunUntil(100)
	if e.Now() != 100 {
		t.Fatalf("clock = %v, want 100 with empty queue", e.Now())
	}
}

func TestTicker(t *testing.T) {
	e := NewEngine(1)
	n := 0
	tk := e.Every(10, func() {
		n++
		if n == 5 {
			e.Halt()
		}
	})
	e.Run()
	tk.Stop()
	if n != 5 {
		t.Fatalf("ticks = %d, want 5", n)
	}
	if e.Now() != 50 {
		t.Fatalf("clock = %v, want 50", e.Now())
	}
}

func TestTickerStop(t *testing.T) {
	e := NewEngine(1)
	n := 0
	var tk *Ticker
	tk = e.Every(1, func() {
		n++
		if n == 3 {
			tk.Stop()
		}
	})
	e.RunUntil(10)
	if n != 3 {
		t.Fatalf("ticks after Stop = %d, want 3", n)
	}
}

func TestHalt(t *testing.T) {
	e := NewEngine(1)
	ran := 0
	e.At(1, func() { ran++; e.Halt() })
	e.At(2, func() { ran++ })
	e.Run()
	if ran != 1 {
		t.Fatalf("ran %d events, want 1 (halted)", ran)
	}
	// Run again resumes.
	e.Run()
	if ran != 2 {
		t.Fatalf("ran %d events after resume, want 2", ran)
	}
}

func TestDeterminismSameSeed(t *testing.T) {
	runTrace := func(seed uint64) []float64 {
		e := NewEngine(seed)
		var trace []float64
		var step func()
		step = func() {
			trace = append(trace, float64(e.Now()))
			if len(trace) < 100 {
				e.After(e.RNG().Exp(1.0), step)
			}
		}
		e.After(0, step)
		e.Run()
		return trace
	}
	a, b := runTrace(42), runTrace(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("traces diverge at %d: %v vs %v", i, a[i], b[i])
		}
	}
	c := runTrace(43)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical traces")
	}
}

func TestTimeString(t *testing.T) {
	cases := []struct {
		t    Time
		want string
	}{
		{Time(0.5), "0.500s"},
		{Time(90), "1.50m"},
		{Time(7200), "2.00h"},
		{Time(2 * Day), "2.00d"},
	}
	for _, c := range cases {
		if got := c.t.String(); got != c.want {
			t.Errorf("Time(%v).String() = %q, want %q", float64(c.t), got, c.want)
		}
	}
}

func TestRNGFloat64Range(t *testing.T) {
	r := NewRNG(7)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64() = %v out of [0,1)", f)
		}
	}
}

func TestRNGIntnRange(t *testing.T) {
	if err := quick.Check(func(seed uint64, n uint16) bool {
		nn := int(n%1000) + 1
		r := NewRNG(seed)
		v := r.Intn(nn)
		return v >= 0 && v < nn
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRNGExpMean(t *testing.T) {
	r := NewRNG(11)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += r.Exp(3.0)
	}
	mean := sum / n
	if math.Abs(mean-3.0) > 0.05 {
		t.Fatalf("Exp mean = %v, want ~3.0", mean)
	}
}

func TestRNGNormalMoments(t *testing.T) {
	r := NewRNG(13)
	const n = 200000
	sum, sumsq := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := r.Normal(10, 2)
		sum += v
		sumsq += v * v
	}
	mean := sum / n
	variance := sumsq/n - mean*mean
	if math.Abs(mean-10) > 0.05 {
		t.Fatalf("Normal mean = %v, want ~10", mean)
	}
	if math.Abs(math.Sqrt(variance)-2) > 0.05 {
		t.Fatalf("Normal stddev = %v, want ~2", math.Sqrt(variance))
	}
}

func TestRNGParetoTail(t *testing.T) {
	r := NewRNG(17)
	for i := 0; i < 10000; i++ {
		v := r.Pareto(2.0, 1.5)
		if v < 2.0 {
			t.Fatalf("Pareto(2,1.5) = %v below scale", v)
		}
	}
}

func TestRNGPermIsPermutation(t *testing.T) {
	if err := quick.Check(func(seed uint64) bool {
		r := NewRNG(seed)
		p := r.Perm(50)
		seen := make([]bool, 50)
		for _, v := range p {
			if v < 0 || v >= 50 || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestRNGBernoulliEdges(t *testing.T) {
	r := NewRNG(1)
	for i := 0; i < 100; i++ {
		if r.Bernoulli(0) {
			t.Fatal("Bernoulli(0) returned true")
		}
		if !r.Bernoulli(1) {
			t.Fatal("Bernoulli(1) returned false")
		}
	}
}

func TestRNGForkIndependence(t *testing.T) {
	a := NewRNG(5)
	b := a.Fork()
	// Drawing from b must not change a's future relative to a clone.
	c := NewRNG(5)
	c.Uint64() // same draw Fork consumed
	for i := 0; i < 10; i++ {
		b.Uint64()
	}
	for i := 0; i < 100; i++ {
		if a.Uint64() != c.Uint64() {
			t.Fatal("Fork perturbed parent stream")
		}
	}
}

// TestCancelReclaimsQueueSlots is the regression test for the
// cancelled-event leak: with the old pointer heap, cancelled events stayed
// queued (closures and all) until their timestamp was reached. Now
// cancelling must shrink the live count immediately and the physical queue
// via compaction, without advancing the clock at all.
func TestCancelReclaimsQueueSlots(t *testing.T) {
	const n = 100000
	e := NewEngine(1)
	// One far-future survivor so the queue never fully drains.
	e.At(1e9, func() {})
	handles := make([]Handle, n)
	for i := range handles {
		handles[i] = e.After(1e6+Duration(i), func() {})
	}
	if got := e.Pending(); got != n+1 {
		t.Fatalf("Pending = %d before cancels, want %d", got, n+1)
	}
	for _, h := range handles {
		h.Cancel()
	}
	if got := e.Pending(); got != 1 {
		t.Fatalf("Pending = %d after cancelling %d events, want 1", got, n)
	}
	// Compaction must have physically reclaimed the slots — without waiting
	// for the cancelled timestamps — so the backing heap is back to O(live)
	// plus the ≤64-tombstone slack below the compaction floor.
	if got := len(e.queue); got > 80 {
		t.Fatalf("heap holds %d entries after mass cancel, want ≤ 80", got)
	}
	if got := cap(e.queue); got > 2048 {
		t.Fatalf("heap capacity %d after mass cancel, want shrunk", got)
	}
	if e.Now() != 0 {
		t.Fatalf("clock moved to %v during cancellation", e.Now())
	}
	// The survivor still fires.
	e.Run()
	if e.Fired() != 1 || e.Now() != 1e9 {
		t.Fatalf("after run: fired=%d now=%v, want 1 event at t=1e9", e.Fired(), e.Now())
	}
}

// TestCancelInterleavedWithPops checks ordering stays correct when cancels,
// schedules, and pops interleave heavily (the compaction path reheapifies).
func TestCancelInterleavedWithPops(t *testing.T) {
	e := NewEngine(3)
	rng := NewRNG(9)
	var fired []Time
	var handles []Handle
	for i := 0; i < 5000; i++ {
		at := Time(rng.Float64() * 1000)
		handles = append(handles, e.At(at, func() { fired = append(fired, at) }))
	}
	for i, h := range handles {
		if i%3 != 0 {
			h.Cancel()
		}
	}
	e.Run()
	if len(fired) == 0 {
		t.Fatal("no events fired")
	}
	want := (5000 + 2) / 3
	if len(fired) != want {
		t.Fatalf("fired %d events, want %d survivors", len(fired), want)
	}
	for i := 1; i < len(fired); i++ {
		if fired[i] < fired[i-1] {
			t.Fatalf("events fired out of order at %d: %v after %v", i, fired[i], fired[i-1])
		}
	}
}

func TestPendingAndFiredCounters(t *testing.T) {
	e := NewEngine(1)
	e.After(1, func() {})
	e.After(2, func() {})
	if e.Pending() != 2 {
		t.Fatalf("Pending = %d, want 2", e.Pending())
	}
	e.Run()
	if e.Fired() != 2 {
		t.Fatalf("Fired = %d, want 2", e.Fired())
	}
	if e.Pending() != 0 {
		t.Fatalf("Pending after run = %d, want 0", e.Pending())
	}
}
