package sim

import (
	"sync"
	"testing"
	"time"
)

// TestBatchFIFOAcrossDispatch pins the tentpole invariant: same-tick batch
// dispatch preserves FIFO (schedule) order among equal timestamps, even
// when schedules for the tick arrive interleaved with other timestamps.
func TestBatchFIFOAcrossDispatch(t *testing.T) {
	e := NewEngine(1)
	var got []int
	n := 0
	add := func(at Time) {
		id := n
		n++
		e.At(at, func() { got = append(got, id) })
	}
	// Interleave schedules across three ticks; ticks fire in time order
	// and FIFO must hold within each tick.
	for i := 0; i < 9; i++ {
		add(Time(5 + i%3)) // ids 0..8 across ticks 5,6,7
	}
	e.Run()
	want := []int{0, 3, 6, 1, 4, 7, 2, 5, 8} // tick 5: ids 0,3,6; tick 6: 1,4,7; tick 7: 2,5,8
	if len(got) != len(want) {
		t.Fatalf("fired %d events, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("dispatch order = %v, want %v", got, want)
		}
	}
}

// TestCancelWithinCurrentBatch: an earlier event of the tick cancels a
// later one that has already been drained into the batch — it must not
// fire, and the cancel must not leave a stale tombstone behind.
func TestCancelWithinCurrentBatch(t *testing.T) {
	e := NewEngine(1)
	var got []string
	var hC Handle
	e.At(5, func() {
		got = append(got, "A")
		hC.Cancel() // C is in the current batch, not yet fired
	})
	e.At(5, func() { got = append(got, "B") })
	hC = e.At(5, func() { got = append(got, "C") })
	e.At(5, func() { got = append(got, "D") })
	e.Run()
	want := "A,B,D"
	joined := ""
	for i, s := range got {
		if i > 0 {
			joined += ","
		}
		joined += s
	}
	if joined != want {
		t.Fatalf("fired %q, want %q", joined, want)
	}
	if e.Fired() != 3 {
		t.Fatalf("Fired = %d, want 3", e.Fired())
	}
	// No stale tombstone: the cancel landed in the batch, not the queue.
	if len(e.cancelled) != 0 {
		t.Fatalf("cancelled map holds %d entries, want 0", len(e.cancelled))
	}
	// And scheduling/draining afterwards stays exact.
	e.After(1, func() {})
	if e.Pending() != 1 {
		t.Fatalf("Pending = %d, want 1", e.Pending())
	}
}

// TestCancelSelfWithinBatch: a batch event cancelling itself mid-flight is
// the fired-event no-op.
func TestCancelSelfWithinBatch(t *testing.T) {
	e := NewEngine(1)
	var h Handle
	ran := false
	h = e.At(5, func() {
		ran = true
		h.Cancel()
	})
	e.At(5, func() {})
	e.Run()
	if !ran {
		t.Fatal("self-cancelling event did not run")
	}
	if e.Fired() != 2 {
		t.Fatalf("Fired = %d, want 2", e.Fired())
	}
}

// TestPendingDuringBatchAndCompaction: Pending must count the unfired
// remainder of the current batch, stay exact while a mid-batch cancel
// storm triggers heap compaction, and exclude batch entries cancelled
// before they fire.
func TestPendingDuringBatchAndCompaction(t *testing.T) {
	e := NewEngine(1)
	const future = 1000
	// A far-future population large enough to cross the compaction
	// threshold (>64 tombstones, tombstones*2 > live).
	futures := make([]Handle, future)
	for i := range futures {
		futures[i] = e.After(1e6+Duration(i), func() {})
	}
	var inBatch, afterCancels, afterBatchCancel int
	var hLast Handle
	e.At(5, func() {
		// Three batch events follow this one (one of which we cancel), plus
		// the far-future population.
		inBatch = e.Pending()
		for _, h := range futures {
			h.Cancel() // triggers compaction mid-batch
		}
		afterCancels = e.Pending()
		hLast.Cancel() // cancel a not-yet-fired member of this batch
		afterBatchCancel = e.Pending()
	})
	e.At(5, func() {})
	e.At(5, func() {})
	hLast = e.At(5, func() { t.Fatal("cancelled batch event fired") })
	e.RunUntil(10)
	if inBatch != future+3 {
		t.Fatalf("Pending inside batch = %d, want %d", inBatch, future+3)
	}
	if afterCancels != 3 {
		t.Fatalf("Pending after compaction = %d, want 3", afterCancels)
	}
	if afterBatchCancel != 2 {
		t.Fatalf("Pending after in-batch cancel = %d, want 2", afterBatchCancel)
	}
	if e.Pending() != 0 {
		t.Fatalf("Pending after run = %d, want 0", e.Pending())
	}
	if e.Fired() != 3 {
		t.Fatalf("Fired = %d, want 3", e.Fired())
	}
}

// TestHaltMidBatchRequeues: Halt inside a batch stops dispatch after the
// current callback; the unfired remainder must survive (requeued, FIFO
// preserved) and fire on resume.
func TestHaltMidBatchRequeues(t *testing.T) {
	e := NewEngine(1)
	var got []int
	for i := 0; i < 6; i++ {
		id := i
		e.At(5, func() {
			got = append(got, id)
			if id == 2 {
				e.Halt()
			}
		})
	}
	e.Run()
	if len(got) != 3 {
		t.Fatalf("fired %d events before halt, want 3", len(got))
	}
	if e.Pending() != 3 {
		t.Fatalf("Pending while halted = %d, want 3 requeued", e.Pending())
	}
	if e.Now() != 5 {
		t.Fatalf("clock = %v at halt, want 5", e.Now())
	}
	// A requeued event must still be cancellable through the normal path.
	e.Run()
	want := []int{0, 1, 2, 3, 4, 5}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order across halt = %v, want %v", got, want)
		}
	}
}

// TestBatchRescheduleSameTime: a batch callback scheduling a new event at
// the current timestamp lands it in a later batch of the same tick — it
// still fires at that time, after the current batch completes.
func TestBatchRescheduleSameTime(t *testing.T) {
	e := NewEngine(1)
	var got []string
	e.At(5, func() {
		got = append(got, "A")
		e.After(0, func() { got = append(got, "A2") })
	})
	e.At(5, func() { got = append(got, "B") })
	e.Run()
	want := []string{"A", "B", "A2"}
	for i := range want {
		if i >= len(got) || got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
	if e.Now() != 5 {
		t.Fatalf("clock = %v, want 5", e.Now())
	}
}

// TestSharedCancelRacesBatch drives a shared engine with synchronized
// ticks from one goroutine while others concurrently cancel handles from
// the live tick. Run under -race this pins the batch CAS protocol: every
// event either fires exactly once or is cancelled, never both, and the
// engine counters stay consistent.
func TestSharedCancelRacesBatch(t *testing.T) {
	e := NewEngine(1)
	e.Share()

	var mu sync.Mutex
	firedBy := make(map[int]bool)

	const ticks = 50
	const perTick = 40
	handles := make([]Handle, 0, ticks*perTick)
	id := 0
	for tk := 1; tk <= ticks; tk++ {
		for j := 0; j < perTick; j++ {
			ev := id
			id++
			handles = append(handles, e.At(Time(tk), func() {
				mu.Lock()
				if firedBy[ev] {
					mu.Unlock()
					t.Errorf("event %d fired twice", ev)
					return
				}
				firedBy[ev] = true
				mu.Unlock()
			}))
		}
	}

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := w; i < len(handles); i += 4 {
				select {
				case <-stop:
					return
				default:
				}
				if i%3 == 0 {
					handles[i].Cancel()
				}
				if i%16 == 0 {
					e.Pending() // exercise the batch-aware counter concurrently
				}
			}
		}()
	}

	done := make(chan struct{})
	go func() {
		e.RunUntil(Time(ticks + 1))
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("shared run did not finish")
	}
	close(stop)
	wg.Wait()

	mu.Lock()
	fired := len(firedBy)
	mu.Unlock()
	if uint64(fired) != e.Fired() {
		t.Fatalf("callbacks ran %d times but Fired() = %d", fired, e.Fired())
	}
	if e.Pending() != 0 {
		t.Fatalf("Pending after run = %d, want 0", e.Pending())
	}
	// Every cancelled handle that reports Cancelled must not have fired...
	// except the documented race: Cancel landing after the batch claimed
	// the event is a no-op. What must never happen is a fire after a
	// cancel that won (checked by the fire-twice guard plus the counter
	// equality above).
}
