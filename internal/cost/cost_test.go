package cost

import (
	"math"
	"testing"
)

func TestPaperRackShape(t *testing.T) {
	r := PaperRack()
	if r.Cores() != 312 {
		t.Fatalf("cores = %d, want 312 (39×8)", r.Cores())
	}
	raw := float64(r.Servers) * r.DiskTBPerServer
	if raw != 312 {
		t.Fatalf("raw disk = %v TB, want 312", raw)
	}
	if r.UsableTB() >= raw || r.UsableTB() <= raw/3 {
		t.Fatalf("usable = %v TB, want between raw/3 and raw", r.UsableTB())
	}
}

func TestCrossoverNear80Percent(t *testing.T) {
	// §9.1: "at approximately 80% efficiency or greater, it is less
	// expensive than using Amazon for the same services."
	u := Crossover(PaperRack(), Defaults2012(), AWS2012())
	if u < 0.72 || u > 0.88 {
		t.Fatalf("crossover = %.2f, want ≈0.80", u)
	}
}

func TestCheaperAboveCrossoverDearerBelow(t *testing.T) {
	rack, costs, aws := PaperRack(), Defaults2012(), AWS2012()
	u := Crossover(rack, costs, aws)
	below := Compare(rack, costs, aws, u*0.8)
	above := Compare(rack, costs, aws, math.Min(u*1.15, 1.0))
	if below.OSDCCheaper {
		t.Fatalf("OSDC cheaper at %.2f utilization, below crossover", below.Utilization)
	}
	if !above.OSDCCheaper {
		t.Fatalf("OSDC not cheaper at %.2f utilization, above crossover", above.Utilization)
	}
}

func TestRackAnnualIndependentOfUtilization(t *testing.T) {
	rack, costs, aws := PaperRack(), Defaults2012(), AWS2012()
	a := Compare(rack, costs, aws, 0.2)
	b := Compare(rack, costs, aws, 0.9)
	if a.RackAnnual != b.RackAnnual {
		t.Fatal("rack cost must be fixed")
	}
	if a.AWSEquivalent >= b.AWSEquivalent {
		t.Fatal("AWS-equivalent cost must grow with consumption")
	}
}

func TestEffectivePerCoreHourFallsWithUtilization(t *testing.T) {
	rack, costs, aws := PaperRack(), Defaults2012(), AWS2012()
	lo := Compare(rack, costs, aws, 0.3)
	hi := Compare(rack, costs, aws, 0.95)
	if lo.RackPerCoreHr <= hi.RackPerCoreHr {
		t.Fatal("per-core-hour cost must fall as utilization rises")
	}
	// At high utilization the rack beats AWS per-core pricing.
	if hi.RackPerCoreHr >= aws.PerCoreHour*1.6 {
		t.Fatalf("rack $/core-hr at 95%% = %v, not competitive", hi.RackPerCoreHr)
	}
}

func TestSweepMonotonic(t *testing.T) {
	rack, costs, aws := PaperRack(), Defaults2012(), AWS2012()
	utils := []float64{0.1, 0.3, 0.5, 0.7, 0.8, 0.9, 1.0}
	sweep := Sweep(rack, costs, aws, utils)
	if len(sweep) != len(utils) {
		t.Fatal("sweep length")
	}
	flips := 0
	for i := 1; i < len(sweep); i++ {
		if sweep[i].OSDCCheaper && !sweep[i-1].OSDCCheaper {
			flips++
		}
		if !sweep[i].OSDCCheaper && sweep[i-1].OSDCCheaper {
			t.Fatal("OSDC became dearer as utilization rose")
		}
	}
	if flips != 1 {
		t.Fatalf("crossover flips = %d, want exactly 1", flips)
	}
}

func TestBadUtilizationPanics(t *testing.T) {
	for _, u := range []float64{0, -0.5, 1.5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("utilization %v accepted", u)
				}
			}()
			Compare(PaperRack(), Defaults2012(), AWS2012(), u)
		}()
	}
}

func TestEgressCost(t *testing.T) {
	// Moving 100 TB out of AWS at 2012 egress pricing costs real money —
	// the paper's data-gravity argument for community clouds.
	d := DataEgressComparison(AWS2012(), 100)
	if d < 10_000 || d > 14_000 {
		t.Fatalf("100 TB egress = $%v, want ~$12k", d)
	}
}

func TestFiveSustainabilityRules(t *testing.T) {
	rules := SustainabilityRules()
	if len(rules) != 5 {
		t.Fatalf("rules = %d, want 5", len(rules))
	}
}
