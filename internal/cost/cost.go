// Package cost implements the OSDC sustainability and cost model (paper
// §8, §9.1). The paper's rule of thumb: "when we operate an OSDC rack at
// approximately 80% efficiency or greater, it is less expensive than using
// Amazon for the same services."
//
// A rack is 39 servers, each with 8 cores and 8 TB of disk (§9.1 footnote).
// The model compares the rack's fixed annual cost against what the same
// consumed services (core-hours plus stored GB-months) would cost on
// 2012-era AWS on-demand pricing, as a function of rack utilization.
package cost

import (
	"fmt"
	"math"
)

// RackSpec is the paper's standard rack.
type RackSpec struct {
	Servers         int
	CoresPerServer  int
	DiskTBPerServer float64
}

// PaperRack returns the §9.1 rack: 39 servers × 8 cores × 8 TB.
func PaperRack() RackSpec {
	return RackSpec{Servers: 39, CoresPerServer: 8, DiskTBPerServer: 8}
}

// Cores returns total rack cores.
func (r RackSpec) Cores() int { return r.Servers * r.CoresPerServer }

// UsableTB returns storage after replication overhead (GlusterFS replica 2
// plus filesystem overhead leaves ~45% usable).
func (r RackSpec) UsableTB() float64 {
	return float64(r.Servers) * r.DiskTBPerServer * 0.45
}

// RackCosts is the rack's annual fixed cost structure in dollars. The OSDC
// runs on a fixed investment each year (§3.2 rule 7); automation (§8 rule
// 5) is what keeps Staff from dominating further.
type RackCosts struct {
	HardwareCapex   float64 // servers + switches, amortized over AmortYears
	AmortYears      float64
	PowerCooling    float64 // annual
	SpaceRent       float64 // annual
	NetworkTransit  float64 // annual share of the 10G research links
	StaffFTE        float64 // CSOC operations staff per rack
	StaffCostPerFTE float64
}

// Defaults2012 is the calibrated cost structure.
func Defaults2012() RackCosts {
	// Staff is the dominant term — the CSOC's operations and researcher
	// support (§2) — which is why §8 rule 5 pushes automation so hard.
	return RackCosts{
		HardwareCapex: 150_000, AmortYears: 3,
		PowerCooling: 14_000, SpaceRent: 12_000, NetworkTransit: 38_000,
		StaffFTE: 2.0, StaffCostPerFTE: 105_000,
	}
}

// Annual returns the rack's total annual cost.
func (c RackCosts) Annual() float64 {
	return c.HardwareCapex/c.AmortYears + c.PowerCooling + c.SpaceRent +
		c.NetworkTransit + c.StaffFTE*c.StaffCostPerFTE
}

// AWSPrices are 2012-era on-demand prices.
type AWSPrices struct {
	PerCoreHour  float64 // derived from m1.xlarge: $0.64/hr ÷ 8 cores
	S3PerGBMonth float64
	EgressPerGB  float64
}

// AWS2012 returns the published 2012 on-demand rates.
func AWS2012() AWSPrices {
	return AWSPrices{PerCoreHour: 0.080, S3PerGBMonth: 0.105, EgressPerGB: 0.12}
}

const hoursPerYear = 8766

// Comparison is one point of the §9.1 utilization sweep.
type Comparison struct {
	Utilization   float64
	RackAnnual    float64 // fixed, independent of utilization
	AWSEquivalent float64 // cost of the same consumed services on AWS
	RackPerCoreHr float64 // effective $/core-hour delivered by the rack
	OSDCCheaper   bool
}

// Compare evaluates the rack against AWS at a given utilization in (0,1].
// Consumed services at utilization u: u × full-rack core-hours and u ×
// usable storage held for the year.
func Compare(rack RackSpec, costs RackCosts, aws AWSPrices, utilization float64) Comparison {
	if utilization <= 0 || utilization > 1 {
		panic(fmt.Sprintf("cost: utilization %v out of (0,1]", utilization))
	}
	coreHours := float64(rack.Cores()) * hoursPerYear * utilization
	gbMonths := rack.UsableTB() * 1024 * 12 * utilization
	awsCost := coreHours*aws.PerCoreHour + gbMonths*aws.S3PerGBMonth
	rackAnnual := costs.Annual()
	return Comparison{
		Utilization:   utilization,
		RackAnnual:    rackAnnual,
		AWSEquivalent: awsCost,
		RackPerCoreHr: rackAnnual / coreHours,
		OSDCCheaper:   rackAnnual < awsCost,
	}
}

// Crossover returns the utilization at which the rack and AWS cost the
// same: rackAnnual = u × awsFull. The paper's claim is ~0.8.
func Crossover(rack RackSpec, costs RackCosts, aws AWSPrices) float64 {
	full := Compare(rack, costs, aws, 1.0)
	u := full.RackAnnual / full.AWSEquivalent
	return math.Min(u, math.Inf(1))
}

// Sweep evaluates a range of utilizations for the benchmark table.
func Sweep(rack RackSpec, costs RackCosts, aws AWSPrices, utils []float64) []Comparison {
	out := make([]Comparison, 0, len(utils))
	for _, u := range utils {
		out = append(out, Compare(rack, costs, aws, u))
	}
	return out
}

// DataEgressComparison quantifies the paper's third argument (§9.1): moving
// large datasets out of a commercial cloud costs real money, while the
// OSDC's research networks carry it at no marginal cost. Returns the AWS
// egress dollars for moving the given TB out once.
func DataEgressComparison(aws AWSPrices, terabytes float64) float64 {
	return terabytes * 1024 * aws.EgressPerGB
}

// SustainabilityRules returns the OSDC working group's five operating rules
// (§8), used by documentation and the console's about page.
func SustainabilityRules() []string {
	return []string{
		"Provide some services without charge to any interested researcher.",
		"For larger groups and activities that require more OSDC resources, charge for these resources on a cost recovery basis.",
		"Partner with university partners to gain research funding to tackle new projects and to develop new technology.",
		"Raise funding from donors and not-for-profits in order to provide more resources to more researchers.",
		"Work to automate the operation of the OSDC as much as possible in order to reduce the costs of operations.",
	}
}
