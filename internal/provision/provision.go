// Package provision implements the OSDC's automated bare-metal provisioning
// pipeline (paper §7.3): IPMI power control triggers a PXE network boot,
// the PXE server hands out a start-up image and a preseed file, the
// installer lays down Ubuntu Server from a repository proxy, post-install
// scripts configure networking, a reboot script verifies IPMI and finishes
// partitioning/RAID, and finally a Chef client checks in with the Chef
// server and converges the node on its role's run-list.
//
// The paper's claim: the first manual rack install "took over a week"; the
// automated pipeline takes "a full rack from bare metal to a compute or
// storage cloud in much less than a day". Both paths are modelled so the
// benchmark reproduces that comparison.
package provision

import (
	"fmt"
	"sort"

	"osdc/internal/sim"
)

// Role selects a node's Chef run-list.
type Role string

// Node roles in an OSDC rack.
const (
	RoleManagement Role = "management"
	RoleCompute    Role = "compute"
	RoleStorage    Role = "storage"
)

// Recipe is one Chef recipe: an idempotent configuration step.
type Recipe struct {
	Name string
	Dur  sim.Duration // convergence time
}

// RunList returns the Chef run-list for a role.
func RunList(role Role) []Recipe {
	base := []Recipe{
		{"ntp", 20}, {"users", 30}, {"ssh-hardening", 25}, {"nagios-nrpe", 60},
	}
	switch role {
	case RoleManagement:
		return append(base, Recipe{"chef-server", 300}, Recipe{"pxe-dhcp-tftp", 240},
			Recipe{"apt-proxy", 120}, Recipe{"openstack-controller", 600})
	case RoleStorage:
		return append(base, Recipe{"raid-arrays", 400}, Recipe{"glusterfs-server", 300},
			Recipe{"samba-export", 120})
	default: // compute
		return append(base, Recipe{"kvm-hypervisor", 240}, Recipe{"nova-compute", 300},
			Recipe{"glusterfs-client", 90})
	}
}

// Phase is a provisioning pipeline stage.
type Phase string

// Pipeline phases, in order.
const (
	PhaseBareMetal Phase = "bare-metal"
	PhaseIPMIBoot  Phase = "ipmi-boot"
	PhasePXE       Phase = "pxe-boot"
	PhaseOSInstall Phase = "os-install"
	PhaseNetConfig Phase = "post-install-network"
	PhaseReboot    Phase = "reboot-verify-raid"
	PhaseChefRun   Phase = "chef-converge"
	PhaseCleanup   Phase = "cleanup"
	PhaseReady     Phase = "ready"
	PhaseFailed    Phase = "failed"
)

// Server is one rack server being provisioned.
type Server struct {
	Name    string
	Role    Role
	Phase   Phase
	Applied []string // converged recipes
	Started sim.Time
	Ready   sim.Time
	Retries int
}

// Durations parameterize the automated pipeline (seconds). Defaults are
// typical for 2012 hardware and an on-site apt proxy.
type Durations struct {
	IPMI      sim.Duration // power cycle + BMC handshake
	PXE       sim.Duration // DHCP/TFTP + kernel fetch
	OSInstall sim.Duration // preseeded Ubuntu Server install
	NetConfig sim.Duration // post-install script
	Reboot    sim.Duration // reboot + IPMI check + RAID finish
	Cleanup   sim.Duration
}

// DefaultDurations is the calibrated automated path: ≈1.2 h/server
// end-to-end plus Chef convergence.
func DefaultDurations() Durations {
	return Durations{
		IPMI: 120, PXE: 180, OSInstall: 1500, NetConfig: 300,
		Reboot: 600, Cleanup: 180,
	}
}

// Pipeline is the automated provisioning system: one PXE/Chef server pair
// driving a rack.
type Pipeline struct {
	engine *sim.Engine
	dur    Durations
	rng    *sim.RNG
	// InstallSlots bounds concurrent OS installs (apt mirror / PXE TFTP
	// bandwidth). The paper's rack is 39 servers; ~16 concurrent installs
	// is what one gigabit mirror sustains.
	InstallSlots int
	// FailureProb is the per-phase transient failure probability; failures
	// retry from the IPMI step (as the real pipeline does).
	FailureProb float64

	installFree []sim.Time

	Provisioned int64
	Failures    int64
}

// NewPipeline creates the automated pipeline.
func NewPipeline(e *sim.Engine, dur Durations, installSlots int, failureProb float64) *Pipeline {
	if installSlots <= 0 {
		installSlots = 16
	}
	return &Pipeline{
		engine: e, dur: dur, rng: e.RNG().Fork(),
		InstallSlots: installSlots, FailureProb: failureProb,
		installFree: make([]sim.Time, installSlots),
	}
}

// Provision drives one server bare-metal→ready; done fires on completion.
func (p *Pipeline) Provision(s *Server, done func(*Server)) {
	s.Started = p.engine.Now()
	s.Phase = PhaseBareMetal
	p.step(s, done)
}

// step advances the server one phase.
func (p *Pipeline) step(s *Server, done func(*Server)) {
	fail := func() bool {
		if p.rng.Bernoulli(p.FailureProb) {
			s.Retries++
			p.Failures++
			s.Phase = PhaseBareMetal
			// Restart after an operator-visible backoff.
			p.engine.After(300, func() { p.step(s, done) })
			return true
		}
		return false
	}
	switch s.Phase {
	case PhaseBareMetal:
		s.Phase = PhaseIPMIBoot
		p.engine.After(p.dur.IPMI, func() { p.step(s, done) })
	case PhaseIPMIBoot:
		if fail() {
			return
		}
		s.Phase = PhasePXE
		p.engine.After(p.dur.PXE, func() { p.step(s, done) })
	case PhasePXE:
		if fail() {
			return
		}
		s.Phase = PhaseOSInstall
		// Queue for an install slot (mirror bandwidth).
		slot := 0
		for i := range p.installFree {
			if p.installFree[i] < p.installFree[slot] {
				slot = i
			}
		}
		start := p.installFree[slot]
		if start < p.engine.Now() {
			start = p.engine.Now()
		}
		end := start + sim.Time(p.dur.OSInstall)
		p.installFree[slot] = end
		p.engine.At(end, func() { p.step(s, done) })
	case PhaseOSInstall:
		if fail() {
			return
		}
		s.Phase = PhaseNetConfig
		p.engine.After(p.dur.NetConfig, func() { p.step(s, done) })
	case PhaseNetConfig:
		s.Phase = PhaseReboot
		p.engine.After(p.dur.Reboot, func() { p.step(s, done) })
	case PhaseReboot:
		if fail() {
			return
		}
		s.Phase = PhaseChefRun
		var total sim.Duration
		for _, r := range RunList(s.Role) {
			total += r.Dur
		}
		p.engine.After(total, func() {
			for _, r := range RunList(s.Role) {
				s.Applied = append(s.Applied, r.Name)
			}
			p.step(s, done)
		})
	case PhaseChefRun:
		s.Phase = PhaseCleanup
		p.engine.After(p.dur.Cleanup, func() { p.step(s, done) })
	case PhaseCleanup:
		s.Phase = PhaseReady
		s.Ready = p.engine.Now()
		p.Provisioned++
		if done != nil {
			done(s)
		}
	}
}

// RackResult summarizes a full-rack provisioning run.
type RackResult struct {
	Servers  []*Server
	Duration sim.Duration // bare metal → every node ready
	Retries  int
}

// ProvisionRack drives a full rack: the management node first (it hosts the
// PXE/Chef services for the rest), then all remaining servers in parallel.
// Returns when every node is ready.
func ProvisionRack(e *sim.Engine, p *Pipeline, servers int) RackResult {
	if servers < 2 {
		panic("provision: a rack needs a management node plus workers")
	}
	start := e.Now()
	res := RackResult{}
	mgmt := &Server{Name: "node-00", Role: RoleManagement}
	res.Servers = append(res.Servers, mgmt)
	remaining := servers - 1
	doneAll := false
	p.Provision(mgmt, func(*Server) {
		for i := 1; i < servers; i++ {
			role := RoleCompute
			if i <= 4 {
				role = RoleStorage // first few servers carry gluster bricks
			}
			s := &Server{Name: fmt.Sprintf("node-%02d", i), Role: role}
			res.Servers = append(res.Servers, s)
			p.Provision(s, func(*Server) {
				remaining--
				if remaining == 0 {
					doneAll = true
				}
			})
		}
	})
	for !doneAll && e.Step() {
	}
	res.Duration = sim.Duration(e.Now() - start)
	for _, s := range res.Servers {
		res.Retries += s.Retries
	}
	sort.Slice(res.Servers, func(i, j int) bool { return res.Servers[i].Name < res.Servers[j].Name })
	return res
}

// ManualParams model the first, hand-installed rack.
type ManualParams struct {
	HandsOnPerServer sim.Duration // undivided attention per server
	WorkdayHours     float64      // hands-on hours per day
	Technicians      int
}

// DefaultManual reflects the paper's experience: ~2.5 h hands-on per
// server, one admin working 8-hour days — "over a week" for 39 servers.
func DefaultManual() ManualParams {
	return ManualParams{HandsOnPerServer: 2.5 * sim.Hour, WorkdayHours: 8, Technicians: 1}
}

// ManualRackTime computes wall-clock days for a manual rack install:
// serialized hands-on work, bounded by the workday, including one
// inevitable re-do of a misconfigured server per rack.
func ManualRackTime(p ManualParams, servers int) sim.Duration {
	if p.Technicians < 1 {
		p.Technicians = 1
	}
	handsOn := p.HandsOnPerServer * float64(servers+1) / float64(p.Technicians) // +1: the re-do
	workdays := handsOn / (p.WorkdayHours * sim.Hour)
	return workdays * sim.Day
}
