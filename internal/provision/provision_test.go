package provision

import (
	"testing"

	"osdc/internal/sim"
)

func TestSingleServerPipelinePhases(t *testing.T) {
	e := sim.NewEngine(4)
	p := NewPipeline(e, DefaultDurations(), 16, 0)
	s := &Server{Name: "n1", Role: RoleCompute}
	var ready *Server
	p.Provision(s, func(x *Server) { ready = x })
	e.Run()
	if ready == nil || s.Phase != PhaseReady {
		t.Fatalf("server not ready: phase=%s", s.Phase)
	}
	// All compute recipes converged.
	want := len(RunList(RoleCompute))
	if len(s.Applied) != want {
		t.Fatalf("applied %d recipes, want %d", len(s.Applied), want)
	}
	// One server should take ~1.5 h, certainly under 3 h.
	dur := sim.Duration(s.Ready - s.Started)
	if dur <= 0 || dur > 3*sim.Hour {
		t.Fatalf("single server took %v", sim.Time(dur))
	}
}

func TestRolesGetDifferentRunLists(t *testing.T) {
	mgmt := RunList(RoleManagement)
	comp := RunList(RoleCompute)
	stor := RunList(RoleStorage)
	has := func(rs []Recipe, name string) bool {
		for _, r := range rs {
			if r.Name == name {
				return true
			}
		}
		return false
	}
	if !has(mgmt, "chef-server") || has(comp, "chef-server") {
		t.Fatal("management run-list wrong")
	}
	if !has(stor, "glusterfs-server") || !has(comp, "glusterfs-client") {
		t.Fatal("storage/compute run-lists wrong")
	}
	for _, rs := range [][]Recipe{mgmt, comp, stor} {
		if !has(rs, "nagios-nrpe") {
			t.Fatal("every node must run the monitoring agent")
		}
	}
}

func TestAutomatedRackUnderADay(t *testing.T) {
	// The paper's target: "taking a full rack from bare metal to a compute
	// or storage cloud in much less than a day". Rack = 39 servers (§9.1).
	e := sim.NewEngine(4)
	p := NewPipeline(e, DefaultDurations(), 16, 0.02)
	res := ProvisionRack(e, p, 39)
	if len(res.Servers) != 39 {
		t.Fatalf("servers = %d", len(res.Servers))
	}
	for _, s := range res.Servers {
		if s.Phase != PhaseReady {
			t.Fatalf("%s not ready: %s", s.Name, s.Phase)
		}
	}
	if res.Duration >= sim.Day {
		t.Fatalf("automated rack took %v, want < 1 day", sim.Time(res.Duration))
	}
	if res.Duration < 2*sim.Hour {
		t.Fatalf("automated rack took %v — implausibly fast", sim.Time(res.Duration))
	}
}

func TestManualRackOverAWeek(t *testing.T) {
	// The paper: the first manual installation "took over a week".
	d := ManualRackTime(DefaultManual(), 39)
	if d <= sim.Week {
		t.Fatalf("manual rack = %v, want > 1 week", sim.Time(d))
	}
	if d > 4*sim.Week {
		t.Fatalf("manual rack = %v — beyond plausibility", sim.Time(d))
	}
}

func TestAutomationSpeedupFactor(t *testing.T) {
	e := sim.NewEngine(4)
	p := NewPipeline(e, DefaultDurations(), 16, 0)
	auto := ProvisionRack(e, p, 39).Duration
	manual := ManualRackTime(DefaultManual(), 39)
	if manual/auto < 7 {
		t.Fatalf("speedup = %.1fx, want ≥7x", manual/auto)
	}
}

func TestTransientFailuresRetryToCompletion(t *testing.T) {
	e := sim.NewEngine(77)
	p := NewPipeline(e, DefaultDurations(), 16, 0.15) // very flaky hardware
	res := ProvisionRack(e, p, 20)
	for _, s := range res.Servers {
		if s.Phase != PhaseReady {
			t.Fatalf("%s stuck at %s", s.Name, s.Phase)
		}
	}
	if res.Retries == 0 {
		t.Fatal("15% failure rate produced no retries")
	}
}

func TestInstallSlotLimitSerializes(t *testing.T) {
	run := func(slots int) sim.Duration {
		e := sim.NewEngine(4)
		p := NewPipeline(e, DefaultDurations(), slots, 0)
		return ProvisionRack(e, p, 39).Duration
	}
	narrow := run(2)
	wide := run(32)
	if narrow <= wide {
		t.Fatalf("2 slots (%v) not slower than 32 slots (%v)", narrow, wide)
	}
}

func TestManagementNodeFirst(t *testing.T) {
	e := sim.NewEngine(4)
	p := NewPipeline(e, DefaultDurations(), 16, 0)
	res := ProvisionRack(e, p, 10)
	var mgmt *Server
	for _, s := range res.Servers {
		if s.Role == RoleManagement {
			mgmt = s
		}
	}
	if mgmt == nil {
		t.Fatal("no management node")
	}
	for _, s := range res.Servers {
		if s.Role != RoleManagement && s.Started < mgmt.Ready {
			t.Fatalf("%s started before the management node was ready", s.Name)
		}
	}
}

func TestTinyRackPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	e := sim.NewEngine(1)
	ProvisionRack(e, NewPipeline(e, DefaultDurations(), 4, 0), 1)
}
