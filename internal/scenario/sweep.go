package scenario

import (
	"fmt"
	"math"
	"runtime"
	"sort"
	"strings"
	"sync"
)

// Aggregate summarizes one metric across a sweep's seeds.
type Aggregate struct {
	Metric string  `json:"metric"`
	N      int     `json:"n"`
	Mean   float64 `json:"mean"`
	Std    float64 `json:"std"` // sample standard deviation (0 when N < 2)
	Min    float64 `json:"min"`
	Max    float64 `json:"max"`
}

// SweepResult is the aggregated outcome of running one scenario over many
// seeds.
type SweepResult struct {
	Scenario string      `json:"scenario"`
	Seeds    []uint64    `json:"seeds"`
	Metrics  []Aggregate `json:"metrics"`
	// SampleTable is the formatted table from the first seed's run, kept so
	// a sweep still shows one concrete paper-style rendition.
	SampleTable string `json:"sample_table,omitempty"`
}

// Seeds returns n consecutive seeds starting at base — the conventional
// seed set for a sweep.
func Seeds(base uint64, n int) []uint64 {
	out := make([]uint64, n)
	for i := range out {
		out[i] = base + uint64(i)
	}
	return out
}

// Sweep runs s once per seed, fanning the seeds out over parallel workers
// (parallel <= 0 means runtime.NumCPU()), and aggregates every metric.
// Each Run owns a private engine, so workers share nothing and need no
// locks; results are deterministic regardless of worker count because
// aggregation is keyed by seed index, not completion order.
func Sweep(s Scenario, seeds []uint64, parallel int) (SweepResult, error) {
	if len(seeds) == 0 {
		return SweepResult{}, fmt.Errorf("scenario: sweep of %s with no seeds", s.Name())
	}
	if parallel <= 0 {
		parallel = runtime.NumCPU()
	}
	if parallel > len(seeds) {
		parallel = len(seeds)
	}

	results := make([]Result, len(seeds))
	errs := make([]error, len(seeds))
	var wg sync.WaitGroup
	work := make(chan int)
	for w := 0; w < parallel; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range work {
				results[i], errs[i] = s.Run(seeds[i])
			}
		}()
	}
	for i := range seeds {
		work <- i
	}
	close(work)
	wg.Wait()

	for i, err := range errs {
		if err != nil {
			return SweepResult{}, fmt.Errorf("scenario %s seed %d: %w", s.Name(), seeds[i], err)
		}
	}

	out := SweepResult{
		Scenario:    s.Name(),
		Seeds:       append([]uint64(nil), seeds...),
		SampleTable: results[0].Table,
	}
	byMetric := map[string][]float64{}
	for _, r := range results {
		for k, v := range r.Metrics {
			byMetric[k] = append(byMetric[k], v)
		}
	}
	names := make([]string, 0, len(byMetric))
	for k := range byMetric {
		names = append(names, k)
	}
	sort.Strings(names)
	for _, k := range names {
		out.Metrics = append(out.Metrics, aggregate(k, byMetric[k]))
	}
	return out, nil
}

func aggregate(name string, xs []float64) Aggregate {
	a := Aggregate{Metric: name, N: len(xs), Min: math.Inf(1), Max: math.Inf(-1)}
	var sum float64
	for _, x := range xs {
		sum += x
		a.Min = math.Min(a.Min, x)
		a.Max = math.Max(a.Max, x)
	}
	a.Mean = sum / float64(len(xs))
	if len(xs) >= 2 {
		var ss float64
		for _, x := range xs {
			d := x - a.Mean
			ss += d * d
		}
		a.Std = math.Sqrt(ss / float64(len(xs)-1))
	}
	return a
}

// Format renders the sweep aggregates as an aligned table.
func (sr SweepResult) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s over %d seeds\n", sr.Scenario, len(sr.Seeds))
	fmt.Fprintf(&b, "%-40s %14s %12s %14s %14s\n", "metric", "mean", "std", "min", "max")
	fmt.Fprintln(&b, strings.Repeat("-", 98))
	for _, m := range sr.Metrics {
		fmt.Fprintf(&b, "%-40s %14.4g %12.3g %14.4g %14.4g\n", m.Metric, m.Mean, m.Std, m.Min, m.Max)
	}
	return b.String()
}
