// Package scenario defines the experiment abstraction every evaluation in
// this repository runs through: a Scenario produces typed metrics plus a
// human-readable table for one seed, a package-level registry lets any
// layer contribute scenarios by name, and Sweep fans many seeds out over a
// worker pool and aggregates the metrics.
//
// A scenario is a ~30-line drop-in:
//
//	scenario.Register(scenario.New("my-sweep", "what it shows",
//		func(seed uint64) (scenario.Result, error) {
//			e := sim.NewEngine(seed)
//			... run the model ...
//			return scenario.Result{
//				Metrics: map[string]float64{"throughput-mbit": mbit},
//				Table:   formatted,
//			}, nil
//		}))
//
// Because every Run(seed) owns a private sim.Engine and RNG, scenarios are
// embarrassingly parallel across seeds; Sweep exploits that without locks.
package scenario

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Result is one scenario execution's outcome: named numeric metrics (the
// aggregatable form) and an optional formatted table (the paper-style
// rendition). Metrics must be deterministic functions of the seed.
type Result struct {
	Metrics map[string]float64 `json:"metrics"`
	Table   string             `json:"table,omitempty"`
}

// MetricNames returns the metric keys in sorted order.
func (r Result) MetricNames() []string {
	names := make([]string, 0, len(r.Metrics))
	for k := range r.Metrics {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}

// MetricsTable renders the metrics as an aligned two-column table.
func (r Result) MetricsTable() string {
	var b strings.Builder
	for _, k := range r.MetricNames() {
		fmt.Fprintf(&b, "%-40s %14.4g\n", k, r.Metrics[k])
	}
	return b.String()
}

// Scenario is a named, seeded, repeatable experiment.
type Scenario interface {
	// Name is the registry key and CLI -exp value, e.g. "table3".
	Name() string
	// Describe is a one-line summary for listings.
	Describe() string
	// Run executes the scenario for one seed. It must be self-contained:
	// every call builds its own engine/RNG so concurrent calls with
	// different seeds are safe.
	Run(seed uint64) (Result, error)
}

// fn adapts plain functions to the Scenario interface.
type fn struct {
	name, desc string
	run        func(seed uint64) (Result, error)
}

func (f fn) Name() string                    { return f.name }
func (f fn) Describe() string                { return f.desc }
func (f fn) Run(seed uint64) (Result, error) { return f.run(seed) }

// New builds a Scenario from a name, description and run function.
func New(name, desc string, run func(seed uint64) (Result, error)) Scenario {
	return fn{name: name, desc: desc, run: run}
}

// Parametric is a Scenario whose workload shape is tuned by named numeric
// parameters (user counts, iteration counts, think times). Run uses the
// defaults; With derives a Scenario with overrides applied, so sweeps and
// the CLI's -param flag can re-shape a scenario without re-registering it.
type Parametric interface {
	Scenario
	// Params returns a copy of the default parameter set.
	Params() map[string]float64
	// With derives a Scenario overriding the named defaults. Unknown
	// parameter names error — a silently ignored typo would run the
	// default workload while claiming otherwise.
	With(overrides map[string]float64) (Scenario, error)
}

// paramFn adapts a parameterized run function to Parametric.
type paramFn struct {
	name, desc string
	params     map[string]float64
	run        func(seed uint64, params map[string]float64) (Result, error)
}

func (p paramFn) Name() string     { return p.name }
func (p paramFn) Describe() string { return p.desc }

func (p paramFn) Params() map[string]float64 {
	out := make(map[string]float64, len(p.params))
	for k, v := range p.params {
		out[k] = v
	}
	return out
}

func (p paramFn) Run(seed uint64) (Result, error) { return p.run(seed, p.Params()) }

func (p paramFn) With(overrides map[string]float64) (Scenario, error) {
	merged := p.Params()
	for k, v := range overrides {
		if _, ok := merged[k]; !ok {
			return nil, fmt.Errorf("scenario: %s has no parameter %q (have: %s)",
				p.name, k, strings.Join(p.paramNames(), ", "))
		}
		merged[k] = v
	}
	return paramFn{name: p.name, desc: p.desc, params: merged, run: p.run}, nil
}

func (p paramFn) paramNames() []string {
	names := make([]string, 0, len(p.params))
	for k := range p.params {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}

// NewParametric builds a Parametric scenario from defaults and a run
// function receiving the effective parameter map (always a private copy).
func NewParametric(name, desc string, defaults map[string]float64,
	run func(seed uint64, params map[string]float64) (Result, error)) Parametric {
	cp := make(map[string]float64, len(defaults))
	for k, v := range defaults {
		cp[k] = v
	}
	return paramFn{name: name, desc: desc, params: cp, run: run}
}

var (
	regMu    sync.RWMutex
	registry = map[string]Scenario{}
	regOrder []string
)

// Register adds s to the package registry. Registering an empty or
// duplicate name panics: scenario names are CLI-visible identifiers and a
// collision is always a programming error.
func Register(s Scenario) {
	name := s.Name()
	if name == "" {
		panic("scenario: Register with empty name")
	}
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := registry[name]; dup {
		panic("scenario: duplicate Register of " + name)
	}
	registry[name] = s
	regOrder = append(regOrder, name)
}

// Get looks a scenario up by name.
func Get(name string) (Scenario, bool) {
	regMu.RLock()
	defer regMu.RUnlock()
	s, ok := registry[name]
	return s, ok
}

// Names returns all registered names in registration order.
func Names() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	return append([]string(nil), regOrder...)
}

// All returns all registered scenarios in registration order.
func All() []Scenario {
	regMu.RLock()
	defer regMu.RUnlock()
	out := make([]Scenario, 0, len(regOrder))
	for _, name := range regOrder {
		out = append(out, registry[name])
	}
	return out
}
