package scenario

import (
	"encoding/json"
	"errors"
	"fmt"
	"strings"
	"testing"
)

func testScenario(name string, metric float64) Scenario {
	return New(name, "test scenario "+name, func(seed uint64) (Result, error) {
		return Result{
			Metrics: map[string]float64{"value": metric + float64(seed), "fixed": 7},
			Table:   fmt.Sprintf("table for %s seed %d", name, seed),
		}, nil
	})
}

func TestRegistryRoundTrip(t *testing.T) {
	s := testScenario("reg-roundtrip", 1)
	Register(s)
	got, ok := Get("reg-roundtrip")
	if !ok || got.Name() != "reg-roundtrip" {
		t.Fatalf("Get returned %v, %v", got, ok)
	}
	if got.Describe() == "" {
		t.Fatal("empty description")
	}
	found := false
	for _, n := range Names() {
		if n == "reg-roundtrip" {
			found = true
		}
	}
	if !found {
		t.Fatalf("Names() missing registered scenario: %v", Names())
	}
	if len(Names()) != len(All()) {
		t.Fatalf("Names/All length mismatch: %d vs %d", len(Names()), len(All()))
	}
}

func TestRegisterDuplicatePanics(t *testing.T) {
	Register(testScenario("reg-dup", 1))
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on duplicate Register")
		}
	}()
	Register(testScenario("reg-dup", 2))
}

func TestRegisterEmptyNamePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on empty name")
		}
	}()
	Register(testScenario("", 1))
}

func TestResultRendering(t *testing.T) {
	r := Result{Metrics: map[string]float64{"zeta": 1.5, "alpha": 2}}
	names := r.MetricNames()
	if len(names) != 2 || names[0] != "alpha" || names[1] != "zeta" {
		t.Fatalf("MetricNames = %v, want sorted", names)
	}
	table := r.MetricsTable()
	if !strings.Contains(table, "alpha") || strings.Index(table, "alpha") > strings.Index(table, "zeta") {
		t.Fatalf("MetricsTable not sorted:\n%s", table)
	}
	data, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	var back Result
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Metrics["zeta"] != 1.5 {
		t.Fatalf("JSON round trip lost metrics: %s", data)
	}
}

func TestSweepAggregates(t *testing.T) {
	s := New("sweep-agg", "", func(seed uint64) (Result, error) {
		return Result{
			Metrics: map[string]float64{"seed-linear": float64(seed), "constant": 3},
			Table:   fmt.Sprintf("seed %d", seed),
		}, nil
	})
	sr, err := Sweep(s, Seeds(10, 5), 2) // seeds 10..14
	if err != nil {
		t.Fatal(err)
	}
	if sr.Scenario != "sweep-agg" || len(sr.Seeds) != 5 {
		t.Fatalf("sweep header wrong: %+v", sr)
	}
	if sr.SampleTable != "seed 10" {
		t.Fatalf("SampleTable = %q, want first seed's table", sr.SampleTable)
	}
	byName := map[string]Aggregate{}
	for _, m := range sr.Metrics {
		byName[m.Metric] = m
	}
	lin := byName["seed-linear"]
	if lin.N != 5 || lin.Mean != 12 || lin.Min != 10 || lin.Max != 14 {
		t.Fatalf("seed-linear aggregate = %+v", lin)
	}
	// Sample stddev of {10,11,12,13,14} = sqrt(2.5).
	if d := lin.Std - 1.5811388300841898; d > 1e-12 || d < -1e-12 {
		t.Fatalf("Std = %v", lin.Std)
	}
	con := byName["constant"]
	if con.Mean != 3 || con.Std != 0 || con.Min != 3 || con.Max != 3 {
		t.Fatalf("constant aggregate = %+v", con)
	}
	if !strings.Contains(sr.Format(), "seed-linear") {
		t.Fatalf("Format missing metric:\n%s", sr.Format())
	}
}

func TestSweepDeterministicAcrossWorkerCounts(t *testing.T) {
	s := testScenario("sweep-det", 100)
	seeds := Seeds(1, 16)
	serial, err := Sweep(s, seeds, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, par := range []int{2, 8, 64} {
		parallel, err := Sweep(s, seeds, par)
		if err != nil {
			t.Fatal(err)
		}
		a, _ := json.Marshal(serial)
		b, _ := json.Marshal(parallel)
		if string(a) != string(b) {
			t.Fatalf("parallel=%d diverged from serial:\n%s\nvs\n%s", par, a, b)
		}
	}
}

func TestSweepPropagatesErrors(t *testing.T) {
	boom := errors.New("boom")
	s := New("sweep-err", "", func(seed uint64) (Result, error) {
		if seed == 3 {
			return Result{}, boom
		}
		return Result{Metrics: map[string]float64{"x": 1}}, nil
	})
	_, err := Sweep(s, Seeds(0, 8), 4)
	if err == nil || !errors.Is(err, boom) {
		t.Fatalf("err = %v, want wrapped boom", err)
	}
	if !strings.Contains(err.Error(), "seed 3") {
		t.Fatalf("error does not identify seed: %v", err)
	}
}

func TestSweepNoSeeds(t *testing.T) {
	if _, err := Sweep(testScenario("sweep-empty", 0), nil, 1); err == nil {
		t.Fatal("expected error for empty seed set")
	}
}

// --- Parametric ---

func TestParametricDefaultsAndOverrides(t *testing.T) {
	p := NewParametric("param-demo", "demo", map[string]float64{"users": 8, "iters": 5},
		func(seed uint64, params map[string]float64) (Result, error) {
			return Result{Metrics: map[string]float64{
				"product": params["users"] * params["iters"],
			}}, nil
		})

	r, err := p.Run(1)
	if err != nil {
		t.Fatal(err)
	}
	if r.Metrics["product"] != 40 {
		t.Fatalf("default run product = %v, want 40", r.Metrics["product"])
	}

	big, err := p.With(map[string]float64{"users": 100})
	if err != nil {
		t.Fatal(err)
	}
	if big.Name() != p.Name() {
		t.Fatalf("derived scenario renamed itself: %q", big.Name())
	}
	r, err = big.Run(1)
	if err != nil {
		t.Fatal(err)
	}
	if r.Metrics["product"] != 500 {
		t.Fatalf("override run product = %v, want 500", r.Metrics["product"])
	}
	// The original is untouched and its defaults cannot be mutated from
	// outside.
	p.Params()["users"] = 0
	r, _ = p.Run(1)
	if r.Metrics["product"] != 40 {
		t.Fatalf("defaults mutated through Params(): %v", r.Metrics)
	}
}

func TestParametricRejectsUnknownParam(t *testing.T) {
	p := NewParametric("param-strict", "", map[string]float64{"users": 1},
		func(uint64, map[string]float64) (Result, error) { return Result{}, nil })
	_, err := p.With(map[string]float64{"userz": 2})
	if err == nil || !strings.Contains(err.Error(), "userz") {
		t.Fatalf("err = %v, want unknown-parameter error naming the typo", err)
	}
}
