// Package tukeystate is the console's shared state plane: an HTTP service
// that serves one SessionStore and one rate limiter to N stateless console
// replicas, plus the remote clients the replicas use to reach it.
//
// The console refactor (interceptor chains over the SessionStore/Limiter
// seams) made every piece of per-request console state live behind two
// small interfaces; this package puts those interfaces on the wire. A
// replica with a RemoteSessionStore and a RemoteLimiter holds no session
// or admission state of its own — kill it and the next request lands on a
// sibling with every session and every bucket intact. Parity tests pin the
// remote clients to the in-memory backends: Local and Remote must be
// byte-identical through the interface.
package tukeystate

import (
	"encoding/json"
	"net/http"
	"sync/atomic"
	"time"

	"osdc/internal/telemetry"
	"osdc/internal/tukey"
)

// Wire types. Session expiry crosses as RFC3339; JSON round-trips drop
// Go's monotonic clock reading, which is why parity tests compare with
// time.Time.Equal, not ==.

type sessionReq struct {
	Token   string         `json:"token"`
	Session *tukey.Session `json:"session,omitempty"`
	Before  *time.Time     `json:"before,omitempty"`
}

type sessionResp struct {
	Session *tukey.Session `json:"session,omitempty"`
	OK      bool           `json:"ok"`
	Count   int            `json:"count,omitempty"`
	Reaped  int            `json:"reaped,omitempty"`
}

type allowReq struct {
	Key  string  `json:"key"`
	Cost float64 `json:"cost"`
}

type allowResp struct {
	OK bool `json:"ok"`
}

// Server serves a SessionStore and a Limiter over HTTP. The store carries
// the sessions every replica shares; the limiter carries the per-user
// admission budgets, so a user throttled on one replica is throttled on
// all of them (one budget, not one per replica).
type Server struct {
	store   tukey.SessionStore
	limiter tukey.Limiter
	mux     *http.ServeMux

	// OperatorSecret gates GET /metrics exactly like the other planes'
	// operator surfaces: 404 when empty, 403 without the header. Assign
	// it any time before the first /metrics request.
	OperatorSecret string
	// Metrics is the server's telemetry registry, created by NewServer;
	// callers may register more series onto it before serving.
	Metrics *telemetry.Registry

	requests atomic.Int64
}

// NewServer wraps store and limiter (either may be nil: a nil limiter
// answers every /state/ratelimit/allow with admit, a nil store 404s the
// session routes).
func NewServer(store tukey.SessionStore, limiter tukey.Limiter) *Server {
	s := &Server{store: store, limiter: limiter, mux: http.NewServeMux()}
	s.Metrics = telemetry.NewRegistry()
	s.Metrics.CounterFunc("osdc_state_requests_total",
		"State-plane requests served (sessions, rate limits, health).",
		func() float64 { return float64(s.requests.Load()) })
	if store != nil {
		s.mux.HandleFunc("/state/sessions/get", s.handleGet)
		s.mux.HandleFunc("/state/sessions/put", s.handlePut)
		s.mux.HandleFunc("/state/sessions/delete", s.handleDelete)
		s.mux.HandleFunc("/state/sessions/count", s.handleCount)
		s.mux.HandleFunc("/state/sessions/expire", s.handleExpire)
	}
	s.mux.HandleFunc("/state/ratelimit/allow", s.handleAllow)
	s.mux.HandleFunc("/state/health", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	s.mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		telemetry.ServeMetrics(s.OperatorSecret, s.Metrics, w, r)
	})
	return s
}

func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/metrics" {
		s.requests.Add(1)
	}
	s.mux.ServeHTTP(w, r)
}

func writeJSON(w http.ResponseWriter, code int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

func decode(w http.ResponseWriter, r *http.Request, v interface{}) bool {
	if r.Method != http.MethodPost {
		writeJSON(w, http.StatusMethodNotAllowed, map[string]string{"error": "POST required"})
		return false
	}
	if err := json.NewDecoder(r.Body).Decode(v); err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": err.Error()})
		return false
	}
	return true
}

func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	var req sessionReq
	if !decode(w, r, &req) {
		return
	}
	sess, ok := s.store.Get(req.Token)
	resp := sessionResp{OK: ok}
	if ok {
		resp.Session = &sess
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handlePut(w http.ResponseWriter, r *http.Request) {
	var req sessionReq
	if !decode(w, r, &req) {
		return
	}
	if req.Session == nil {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": "put needs a session"})
		return
	}
	s.store.Put(req.Token, *req.Session)
	writeJSON(w, http.StatusOK, sessionResp{OK: true})
}

func (s *Server) handleDelete(w http.ResponseWriter, r *http.Request) {
	var req sessionReq
	if !decode(w, r, &req) {
		return
	}
	s.store.Delete(req.Token)
	writeJSON(w, http.StatusOK, sessionResp{OK: true})
}

func (s *Server) handleCount(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, sessionResp{OK: true, Count: s.store.Count()})
}

func (s *Server) handleExpire(w http.ResponseWriter, r *http.Request) {
	var req sessionReq
	if !decode(w, r, &req) {
		return
	}
	if req.Before == nil {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": "expire needs a bound"})
		return
	}
	writeJSON(w, http.StatusOK, sessionResp{OK: true, Reaped: s.store.ExpireBefore(*req.Before)})
}

func (s *Server) handleAllow(w http.ResponseWriter, r *http.Request) {
	var req allowReq
	if !decode(w, r, &req) {
		return
	}
	ok := true
	if s.limiter != nil {
		ok = s.limiter.AllowN(req.Key, req.Cost)
	}
	writeJSON(w, http.StatusOK, allowResp{OK: ok})
}
