package tukeystate

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"osdc/internal/tukey"
)

// DefaultTimeout bounds each state-plane round trip. The state plane is on
// every request's path (token resolution + admission), so a hung state
// server must fail the request quickly, not pin a console handler.
const DefaultTimeout = 5 * time.Second

// RemoteSessionStore is a tukey.SessionStore served by a remote tukeystate
// server — the client side of the shared state plane.
//
// Failure semantics are asymmetric, and deliberately so:
//
//   - Reads fail closed: a Get that cannot reach the plane reports "no such
//     session", turning into a 401 at the console. Serving a request whose
//     session cannot be verified would turn a state-plane outage into an
//     auth bypass.
//   - Writes are best-effort: a Put/Delete that cannot reach the plane is
//     remembered (Err) but does not fail the caller's request — the session
//     write will be superseded by the next sliding-TTL refresh anyway.
type RemoteSessionStore struct {
	base   string
	client *http.Client

	mu      sync.Mutex
	lastErr error
}

// NewRemoteSessionStore builds a client for the tukeystate server at base
// (e.g. "http://state:9200"). A nil client gets a DefaultTimeout one.
func NewRemoteSessionStore(base string, client *http.Client) *RemoteSessionStore {
	if client == nil {
		client = &http.Client{Timeout: DefaultTimeout}
	}
	return &RemoteSessionStore{base: base, client: client}
}

// post sends one request/response pair, recording transport errors.
func (s *RemoteSessionStore) post(path string, req sessionReq) (sessionResp, error) {
	var resp sessionResp
	err := postJSON(s.client, s.base+path, req, &resp)
	s.mu.Lock()
	s.lastErr = err
	s.mu.Unlock()
	return resp, err
}

// Err reports the most recent state-plane failure, nil when the last call
// landed.
func (s *RemoteSessionStore) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.lastErr
}

// Get implements tukey.SessionStore, failing closed on transport errors.
func (s *RemoteSessionStore) Get(token string) (tukey.Session, bool) {
	resp, err := s.post("/state/sessions/get", sessionReq{Token: token})
	if err != nil || !resp.OK || resp.Session == nil {
		return tukey.Session{}, false
	}
	return *resp.Session, true
}

// Put implements tukey.SessionStore (best-effort; check Err).
func (s *RemoteSessionStore) Put(token string, sess tukey.Session) {
	_, _ = s.post("/state/sessions/put", sessionReq{Token: token, Session: &sess})
}

// Delete implements tukey.SessionStore (best-effort; check Err).
func (s *RemoteSessionStore) Delete(token string) {
	_, _ = s.post("/state/sessions/delete", sessionReq{Token: token})
}

// Count implements tukey.SessionStore; unreachable planes count zero.
func (s *RemoteSessionStore) Count() int {
	resp, err := s.post("/state/sessions/count", sessionReq{})
	if err != nil {
		return 0
	}
	return resp.Count
}

// ExpireBefore implements tukey.SessionStore; unreachable planes reap zero.
func (s *RemoteSessionStore) ExpireBefore(t time.Time) int {
	resp, err := s.post("/state/sessions/expire", sessionReq{Before: &t})
	if err != nil {
		return 0
	}
	return resp.Reaped
}

// RemoteLimiter is a tukey.Limiter served by a remote tukeystate server:
// one admission budget per user across every console replica.
//
// It fails open: if the state plane is unreachable the request is admitted
// and Errors is incremented. Admission control is load protection, not
// auth — a state-plane outage should degrade to "no throttling", not take
// the whole console down with it (the session reads have already failed
// closed by then anyway).
type RemoteLimiter struct {
	base   string
	client *http.Client

	// Errors counts state-plane round trips that failed (and were admitted
	// fail-open). Read with atomic.LoadInt64.
	Errors int64
}

// NewRemoteLimiter builds a client for the tukeystate server at base. A
// nil client gets a DefaultTimeout one.
func NewRemoteLimiter(base string, client *http.Client) *RemoteLimiter {
	if client == nil {
		client = &http.Client{Timeout: DefaultTimeout}
	}
	return &RemoteLimiter{base: base, client: client}
}

// AllowN implements tukey.Limiter, failing open on transport errors.
func (l *RemoteLimiter) AllowN(key string, cost float64) bool {
	var resp allowResp
	if err := postJSON(l.client, l.base+"/state/ratelimit/allow", allowReq{Key: key, Cost: cost}, &resp); err != nil {
		atomic.AddInt64(&l.Errors, 1)
		return true
	}
	return resp.OK
}

// postJSON is one POST round trip with JSON bodies both ways.
func postJSON(client *http.Client, url string, req, resp interface{}) error {
	body, err := json.Marshal(req)
	if err != nil {
		return err
	}
	httpResp, err := client.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer httpResp.Body.Close()
	if httpResp.StatusCode != http.StatusOK {
		return fmt.Errorf("tukeystate: %s: status %d", url, httpResp.StatusCode)
	}
	return json.NewDecoder(httpResp.Body).Decode(resp)
}
