package tukeystate

import (
	"net/http/httptest"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"osdc/internal/tukey"
)

// storeBackends is the parity table: every SessionStore implementation is
// driven through the same scenarios. The remote backend wraps the
// in-memory one behind a real HTTP server, so these tests also pin the
// wire format — Local and Remote must be indistinguishable through the
// interface.
func storeBackends(t *testing.T) map[string]func(t *testing.T) tukey.SessionStore {
	return map[string]func(t *testing.T) tukey.SessionStore{
		"memory": func(t *testing.T) tukey.SessionStore {
			return tukey.NewMemorySessionStore()
		},
		"file": func(t *testing.T) tukey.SessionStore {
			s, err := tukey.NewFileSessionStore(filepath.Join(t.TempDir(), "sessions.json"))
			if err != nil {
				t.Fatal(err)
			}
			return s
		},
		"remote": func(t *testing.T) tukey.SessionStore {
			srv := httptest.NewServer(NewServer(tukey.NewMemorySessionStore(), nil))
			t.Cleanup(srv.Close)
			return NewRemoteSessionStore(srv.URL, nil)
		},
	}
}

func forEachBackend(t *testing.T, run func(t *testing.T, store tukey.SessionStore)) {
	for name, mk := range storeBackends(t) {
		t.Run(name, func(t *testing.T) {
			run(t, mk(t))
		})
	}
}

func TestStoreParityRoundTrip(t *testing.T) {
	forEachBackend(t, func(t *testing.T, store tukey.SessionStore) {
		exp := time.Date(2012, 11, 1, 12, 0, 0, 0, time.UTC)
		want := tukey.Session{
			Identity: tukey.Identity{Provider: tukey.Shibboleth, Identifier: "alice@uchicago.edu"},
			Expires:  exp,
		}
		store.Put("tok-1", want)
		got, ok := store.Get("tok-1")
		if !ok {
			t.Fatal("stored session not found")
		}
		if got.Identity != want.Identity {
			t.Fatalf("identity = %+v, want %+v", got.Identity, want.Identity)
		}
		// JSON round-trips normalize time zones and drop the monotonic
		// reading: compare instants, not representations.
		if !got.Expires.Equal(want.Expires) {
			t.Fatalf("expires = %v, want %v", got.Expires, want.Expires)
		}
		if _, ok := store.Get("tok-absent"); ok {
			t.Fatal("absent token found")
		}
		if n := store.Count(); n != 1 {
			t.Fatalf("count = %d, want 1", n)
		}
	})
}

func TestStoreParityOverwriteAndDelete(t *testing.T) {
	forEachBackend(t, func(t *testing.T, store tukey.SessionStore) {
		a := tukey.Session{Identity: tukey.Identity{Identifier: "a@x"}}
		b := tukey.Session{Identity: tukey.Identity{Identifier: "b@x"}}
		store.Put("tok", a)
		store.Put("tok", b)
		if got, _ := store.Get("tok"); got.Identity.Identifier != "b@x" {
			t.Fatalf("overwrite lost: got %q", got.Identity.Identifier)
		}
		if n := store.Count(); n != 1 {
			t.Fatalf("count after overwrite = %d, want 1", n)
		}
		store.Delete("tok")
		if _, ok := store.Get("tok"); ok {
			t.Fatal("deleted token still present")
		}
		store.Delete("tok") // absent delete is a no-op on every backend
		if n := store.Count(); n != 0 {
			t.Fatalf("count after delete = %d, want 0", n)
		}
	})
}

func TestStoreParityExpireBefore(t *testing.T) {
	forEachBackend(t, func(t *testing.T, store tukey.SessionStore) {
		t0 := time.Date(2012, 11, 1, 12, 0, 0, 0, time.UTC)
		store.Put("dead", tukey.Session{Identity: tukey.Identity{Identifier: "d@x"}, Expires: t0.Add(time.Minute)})
		store.Put("live", tukey.Session{Identity: tukey.Identity{Identifier: "l@x"}, Expires: t0.Add(time.Hour)})
		store.Put("forever", tukey.Session{Identity: tukey.Identity{Identifier: "f@x"}}) // zero Expires: never reaped
		if n := store.ExpireBefore(t0.Add(30 * time.Minute)); n != 1 {
			t.Fatalf("reaped = %d, want 1", n)
		}
		if _, ok := store.Get("dead"); ok {
			t.Fatal("expired session survived sweep")
		}
		if _, ok := store.Get("live"); !ok {
			t.Fatal("live session reaped")
		}
		if _, ok := store.Get("forever"); !ok {
			t.Fatal("no-expiry session reaped")
		}
		if n := store.Count(); n != 2 {
			t.Fatalf("count after sweep = %d, want 2", n)
		}
	})
}

// TestStoreParityConcurrent hammers every backend with concurrent puts,
// gets and deletes under -race: the interface contract includes "safe for
// concurrent use", remote or not.
func TestStoreParityConcurrent(t *testing.T) {
	forEachBackend(t, func(t *testing.T, store tukey.SessionStore) {
		const workers, perWorker = 8, 25
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := 0; i < perWorker; i++ {
					tok := token(w, i)
					store.Put(tok, tukey.Session{Identity: tukey.Identity{Identifier: "u@x"}})
					store.Get(tok)
					if i%2 == 1 {
						store.Delete(tok)
					}
				}
			}(w)
		}
		wg.Wait()
		// Each worker leaves its even-numbered tokens behind.
		want := workers * (perWorker + 1) / 2
		if n := store.Count(); n != want {
			t.Fatalf("count after concurrent churn = %d, want %d", n, want)
		}
	})
}

func token(w, i int) string {
	return "tok-" + string(rune('a'+w)) + "-" + string(rune('a'+i%26)) + string(rune('a'+i/26))
}

// TestLimiterParity drives the in-process RateLimiter and the RemoteLimiter
// (wrapping an identical RateLimiter behind a real server) through the same
// deterministic sequence: rate 0 means buckets never refill, so admissions
// are a pure function of the call sequence and must match exactly.
func TestLimiterParity(t *testing.T) {
	mkLocal := func(t *testing.T) tukey.Limiter { return tukey.NewRateLimiter(0, 5) }
	mkRemote := func(t *testing.T) tukey.Limiter {
		srv := httptest.NewServer(NewServer(nil, tukey.NewRateLimiter(0, 5)))
		t.Cleanup(srv.Close)
		return NewRemoteLimiter(srv.URL, nil)
	}
	type call struct {
		key  string
		cost float64
	}
	calls := []call{
		{"alice", 1}, {"alice", 2}, {"alice", 2}, // 5 tokens spent
		{"alice", 1},   // bucket empty → deny
		{"bob", 5},     // independent bucket, full charge
		{"bob", 1},     // empty → deny
		{"carol", 10},  // clamped to burst → admit, empties bucket
		{"carol", 1},   // deny
		{"alice", 0.5}, // cost raised to 1 → deny (still empty)
	}
	runSeq := func(l tukey.Limiter) []bool {
		out := make([]bool, len(calls))
		for i, c := range calls {
			out[i] = l.AllowN(c.key, c.cost)
		}
		return out
	}
	local := runSeq(mkLocal(t))
	remote := runSeq(mkRemote(t))
	want := []bool{true, true, true, false, true, false, true, false, false}
	for i := range calls {
		if local[i] != want[i] {
			t.Fatalf("local call %d (%+v) = %v, want %v", i, calls[i], local[i], want[i])
		}
		if remote[i] != want[i] {
			t.Fatalf("remote call %d (%+v) = %v, want %v — remote diverges from local", i, calls[i], remote[i], want[i])
		}
	}
}

// TestRemoteFailureSemantics pins the failure asymmetry: session reads
// fail closed (an unreachable plane is an invalid session, not an auth
// bypass), limiter calls fail open (an unreachable plane stops throttling,
// not the console).
func TestRemoteFailureSemantics(t *testing.T) {
	srv := httptest.NewServer(NewServer(tukey.NewMemorySessionStore(), tukey.NewRateLimiter(0, 1)))
	store := NewRemoteSessionStore(srv.URL, nil)
	limiter := NewRemoteLimiter(srv.URL, nil)

	store.Put("tok", tukey.Session{Identity: tukey.Identity{Identifier: "a@x"}})
	if _, ok := store.Get("tok"); !ok {
		t.Fatal("session not stored while plane up")
	}
	if err := store.Err(); err != nil {
		t.Fatalf("Err while plane up: %v", err)
	}

	srv.Close() // the plane goes away

	if _, ok := store.Get("tok"); ok {
		t.Fatal("Get succeeded against a dead state plane (must fail closed)")
	}
	if err := store.Err(); err == nil {
		t.Fatal("Err nil after failed round trip")
	}
	if !limiter.AllowN("anyone", 1) {
		t.Fatal("limiter denied against a dead state plane (must fail open)")
	}
	if limiter.Errors == 0 {
		t.Fatal("limiter error counter not incremented")
	}
}
