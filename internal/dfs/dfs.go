// Package dfs implements the GlusterFS-like distributed filesystem that
// backs the OSDC's storage (paper §7.1).
//
// Like GlusterFS, the design has no metadata server: file placement is
// computed from an elastic hash of the path (the DHT "distribute"
// translator), and durability comes from synchronous replication across
// replica sets (the "replicate"/AFR translator) with self-healing of stale
// or corrupt copies detected by checksum comparison.
//
// The paper reports that GlusterFS 3.1 had "a bug in mirroring that caused
// some data loss and forced us to stop using mirroring", fixed by 3.3.
// Version selects the behaviour: VersionBuggy31 silently corrupts one
// replica on a write race (fault injection used by the tests), Version33
// replicates correctly and heals.
package dfs

import (
	"crypto/sha256"
	"fmt"
	"hash/fnv"
	"sort"
	"strings"

	"osdc/internal/sim"
	"osdc/internal/simdisk"
)

// Version selects replication behaviour (see package doc).
type Version int

// Supported behaviour modes.
const (
	Version33      Version = iota // current, correct replication + self-heal
	VersionBuggy31                // the 3.1 mirroring bug: occasional silent replica corruption
)

// File is one stored object. Content may be nil for petabyte-scale
// accounting entries, in which case only Size and Sum are tracked.
type File struct {
	Path    string
	Size    int64
	Content []byte
	Sum     [sha256.Size]byte
}

// Brick is one storage unit: a directory on one server's disk.
type Brick struct {
	Name   string
	Node   string // simnet node / server name
	Disk   *simdisk.Disk
	files  map[string]*File
	online bool
	// corrupt marks paths whose local copy is silently bad (mirror bug).
	corrupt map[string]bool
}

// NewBrick creates an online brick on a disk.
func NewBrick(name, node string, disk *simdisk.Disk) *Brick {
	return &Brick{
		Name: name, Node: node, Disk: disk,
		files: make(map[string]*File), corrupt: make(map[string]bool),
		online: true,
	}
}

// Online reports brick availability.
func (b *Brick) Online() bool { return b.online }

// SetOnline flips brick availability (failures and recoveries).
func (b *Brick) SetOnline(v bool) { b.online = v }

// FileCount returns the number of files stored on this brick.
func (b *Brick) FileCount() int { return len(b.files) }

func (b *Brick) store(f *File) error {
	// Account the size *delta*, never release-then-realloc: a failed
	// replace must leave both the stored file and the disk accounting
	// exactly as they were (release-first corrupted the books and made a
	// later remove double-release).
	var oldSize int64
	if old, ok := b.files[f.Path]; ok {
		oldSize = old.Size
	}
	if delta := f.Size - oldSize; delta > 0 {
		if err := b.Disk.Alloc(delta); err != nil {
			return err
		}
	} else {
		b.Disk.Release(oldSize - f.Size)
	}
	cp := *f
	b.files[f.Path] = &cp
	delete(b.corrupt, f.Path)
	return nil
}

func (b *Brick) remove(path string) {
	if old, ok := b.files[path]; ok {
		b.Disk.Release(old.Size)
		delete(b.files, path)
		delete(b.corrupt, path)
	}
}

// Volume is a DFS volume: an ordered list of replica sets, each a group of
// ReplicaCount bricks. Placement distributes files across replica sets by
// elastic hash.
type Volume struct {
	Name         string
	ReplicaCount int
	Version      Version
	sets         [][]*Brick
	engine       *sim.Engine
	rng          *sim.RNG

	// Counters for reports and tests.
	Writes       int64
	Reads        int64
	HealedFiles  int64
	CorruptReads int64
}

// NewVolume builds a volume from bricks. len(bricks) must be a non-zero
// multiple of replicaCount; consecutive bricks form replica sets, as in
// gluster volume create.
func NewVolume(e *sim.Engine, name string, replicaCount int, version Version, bricks []*Brick) (*Volume, error) {
	if replicaCount < 1 {
		return nil, fmt.Errorf("dfs: replica count must be ≥1")
	}
	if len(bricks) == 0 || len(bricks)%replicaCount != 0 {
		return nil, fmt.Errorf("dfs: brick count %d not a multiple of replica %d", len(bricks), replicaCount)
	}
	v := &Volume{
		Name: name, ReplicaCount: replicaCount, Version: version,
		engine: e, rng: e.RNG().Fork(),
	}
	for i := 0; i < len(bricks); i += replicaCount {
		v.sets = append(v.sets, bricks[i:i+replicaCount])
	}
	return v, nil
}

// SetCount returns the number of replica sets.
func (v *Volume) SetCount() int { return len(v.sets) }

// Bricks returns all bricks in layout order.
func (v *Volume) Bricks() []*Brick {
	var out []*Brick
	for _, s := range v.sets {
		out = append(out, s...)
	}
	return out
}

// hashSet picks the replica set for a path (the DHT elastic hash).
func (v *Volume) hashSet(path string) []*Brick {
	h := fnv.New32a()
	h.Write([]byte(path))
	return v.sets[int(h.Sum32())%len(v.sets)]
}

// Write stores content at path, synchronously replicated to every online
// brick of its replica set. Under VersionBuggy31, a write may silently
// corrupt one replica (the paper's 3.1 mirroring bug).
func (v *Volume) Write(path string, content []byte) error {
	return v.writeFile(&File{
		Path: path, Size: int64(len(content)),
		Content: append([]byte(nil), content...),
		Sum:     sha256.Sum256(content),
	})
}

// WriteMeta stores a size-only entry (no content bytes), used for
// petabyte-scale datasets where only accounting matters.
func (v *Volume) WriteMeta(path string, size int64) error {
	return v.writeFile(&File{Path: path, Size: size, Sum: sha256.Sum256([]byte(path))})
}

func (v *Volume) writeFile(f *File) error {
	if strings.TrimSpace(f.Path) == "" {
		return fmt.Errorf("dfs: empty path")
	}
	set := v.hashSet(f.Path)
	// Pre-check every online replica's capacity so a mid-set failure
	// cannot leave some bricks holding the new size and others the old:
	// either the whole replica set takes the write or none does.
	for _, b := range set {
		if !b.online {
			continue
		}
		var oldSize int64
		if old, ok := b.files[f.Path]; ok {
			oldSize = old.Size
		}
		if delta := f.Size - oldSize; delta > b.Disk.Free() {
			return fmt.Errorf("dfs: write %s to %s: %w", f.Path, b.Name,
				simdisk.ErrFull{Disk: b.Disk.Name, Requested: delta, Free: b.Disk.Free()})
		}
	}
	wrote := 0
	for _, b := range set {
		if !b.online {
			continue // AFR: absent replica marked stale, healed later
		}
		if err := b.store(f); err != nil {
			return fmt.Errorf("dfs: write %s to %s: %w", f.Path, b.Name, err)
		}
		wrote++
	}
	if wrote == 0 {
		return fmt.Errorf("dfs: no online replica for %s", f.Path)
	}
	v.Writes++
	// The 3.1 mirroring bug: with both replicas online, a race occasionally
	// leaves one replica silently corrupt.
	if v.Version == VersionBuggy31 && wrote > 1 && v.rng.Bernoulli(0.02) {
		victim := set[v.rng.Intn(len(set))]
		if victim.online {
			victim.corrupt[f.Path] = true
		}
	}
	return nil
}

// Read returns the file at path from the first online, uncorrupted replica.
// Under Version33, reading detects checksum mismatches and triggers
// self-heal; under VersionBuggy31 a corrupt replica may be returned (the
// data-loss mode the paper hit), reported via ErrCorrupt.
func (v *Volume) Read(path string) (*File, error) {
	set := v.hashSet(path)
	v.Reads++
	var stale []*Brick
	var good *File
	var goodBrick *Brick
	for _, b := range set {
		if !b.online {
			continue
		}
		f, ok := b.files[path]
		if !ok {
			stale = append(stale, b)
			continue
		}
		if b.corrupt[path] {
			if v.Version == Version33 {
				// Checksum verification catches it; heal from a clean copy.
				stale = append(stale, b)
				continue
			}
			// 3.1: corruption undetected; first replica wins.
			if good == nil {
				v.CorruptReads++
				return nil, ErrCorrupt{Path: path, Brick: b.Name}
			}
			continue
		}
		if good == nil {
			good, goodBrick = f, b
		}
	}
	if good == nil {
		return nil, ErrNotFound{Path: path}
	}
	_ = goodBrick
	// Self-heal stale/corrupt replicas from the good copy (3.3 behaviour).
	if v.Version == Version33 {
		for _, b := range stale {
			if err := b.store(good); err == nil {
				v.HealedFiles++
			}
		}
	}
	return good, nil
}

// Delete removes the file from every replica.
func (v *Volume) Delete(path string) error {
	set := v.hashSet(path)
	found := false
	for _, b := range set {
		if _, ok := b.files[path]; ok {
			found = true
		}
		b.remove(path)
	}
	if !found {
		return ErrNotFound{Path: path}
	}
	return nil
}

// List returns all paths with the given prefix, sorted.
func (v *Volume) List(prefix string) []string {
	seen := make(map[string]bool)
	for _, s := range v.sets {
		for _, b := range s {
			for p := range b.files {
				if strings.HasPrefix(p, prefix) {
					seen[p] = true
				}
			}
		}
	}
	out := make([]string, 0, len(seen))
	for p := range seen {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// Stat returns size information without reading content.
func (v *Volume) Stat(path string) (int64, error) {
	for _, b := range v.hashSet(path) {
		if f, ok := b.files[path]; ok {
			return f.Size, nil
		}
	}
	return 0, ErrNotFound{Path: path}
}

// UsedBytes sums the logical bytes stored (each file counted once).
func (v *Volume) UsedBytes() int64 {
	var total int64
	counted := make(map[string]bool)
	for _, s := range v.sets {
		for _, b := range s {
			for p, f := range b.files {
				if !counted[p] {
					counted[p] = true
					total += f.Size
				}
			}
		}
	}
	return total
}

// RawBytes sums physical bytes across replicas.
func (v *Volume) RawBytes() int64 {
	var total int64
	for _, s := range v.sets {
		for _, b := range s {
			for _, f := range b.files {
				total += f.Size
			}
		}
	}
	return total
}

// HealAll sweeps every file and repairs stale or corrupt replicas from a
// clean copy (the gluster self-heal daemon's full crawl). Returns the
// number of replica repairs.
func (v *Volume) HealAll() int64 {
	if v.Version != Version33 {
		return 0
	}
	var healed int64
	for _, path := range v.List("") {
		before := v.HealedFiles
		if _, err := v.Read(path); err == nil {
			healed += v.HealedFiles - before
		}
	}
	return healed
}

// ErrNotFound reports a missing file.
type ErrNotFound struct{ Path string }

func (e ErrNotFound) Error() string { return "dfs: not found: " + e.Path }

// ErrCorrupt reports a silently-corrupt replica surfaced to a reader (the
// 3.1 data-loss mode).
type ErrCorrupt struct{ Path, Brick string }

func (e ErrCorrupt) Error() string {
	return fmt.Sprintf("dfs: corrupt replica of %s on %s (gluster 3.1 mirroring bug)", e.Path, e.Brick)
}
