package dfs

import (
	"bytes"
	"fmt"
	"testing"
	"testing/quick"

	"osdc/internal/sim"
	"osdc/internal/simdisk"
)

func newVolume(t *testing.T, bricks, replica int, ver Version) (*sim.Engine, *Volume) {
	t.Helper()
	e := sim.NewEngine(99)
	bs := make([]*Brick, bricks)
	for i := range bs {
		d := simdisk.New(e, fmt.Sprintf("disk%d", i), 3072e6, 1136e6, 1<<50)
		bs[i] = NewBrick(fmt.Sprintf("brick%d", i), fmt.Sprintf("node%d", i), d)
	}
	v, err := NewVolume(e, "vol", replica, ver, bs)
	if err != nil {
		t.Fatal(err)
	}
	return e, v
}

func TestWriteReadRoundTrip(t *testing.T) {
	_, v := newVolume(t, 4, 2, Version33)
	data := []byte("EO-1 Hyperion scene, Namibia")
	if err := v.Write("/matsu/scene1", data); err != nil {
		t.Fatal(err)
	}
	f, err := v.Read("/matsu/scene1")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(f.Content, data) {
		t.Fatal("content differs")
	}
}

func TestReadMissing(t *testing.T) {
	_, v := newVolume(t, 2, 1, Version33)
	if _, err := v.Read("/nope"); err == nil {
		t.Fatal("expected ErrNotFound")
	} else if _, ok := err.(ErrNotFound); !ok {
		t.Fatalf("got %T, want ErrNotFound", err)
	}
}

func TestReplicationSurvivesBrickFailure(t *testing.T) {
	_, v := newVolume(t, 4, 2, Version33)
	for i := 0; i < 20; i++ {
		if err := v.Write(fmt.Sprintf("/f%d", i), []byte(fmt.Sprintf("data%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	// Kill one brick in each set.
	v.Bricks()[0].SetOnline(false)
	v.Bricks()[2].SetOnline(false)
	for i := 0; i < 20; i++ {
		f, err := v.Read(fmt.Sprintf("/f%d", i))
		if err != nil {
			t.Fatalf("read f%d after failure: %v", i, err)
		}
		if string(f.Content) != fmt.Sprintf("data%d", i) {
			t.Fatalf("f%d content wrong after failover", i)
		}
	}
}

func TestNoReplicaSetOfflineFails(t *testing.T) {
	_, v := newVolume(t, 2, 2, Version33)
	for _, b := range v.Bricks() {
		b.SetOnline(false)
	}
	if err := v.Write("/x", []byte("y")); err == nil {
		t.Fatal("write must fail with all replicas offline")
	}
}

func TestSelfHealAfterRecovery(t *testing.T) {
	_, v := newVolume(t, 2, 2, Version33)
	b0, b1 := v.Bricks()[0], v.Bricks()[1]
	b1.SetOnline(false)
	if err := v.Write("/healme", []byte("fresh")); err != nil {
		t.Fatal(err)
	}
	if b1.FileCount() != 0 {
		t.Fatal("offline brick received write")
	}
	b1.SetOnline(true)
	// Read triggers self-heal of the stale replica.
	if _, err := v.Read("/healme"); err != nil {
		t.Fatal(err)
	}
	if b1.FileCount() != 1 {
		t.Fatal("stale replica not healed on read")
	}
	if v.HealedFiles == 0 {
		t.Fatal("heal counter not incremented")
	}
	_ = b0
}

func TestMirroringBug31CausesCorruptReads(t *testing.T) {
	// Under 3.1, heavy write traffic eventually serves a corrupt replica —
	// the data-loss event the paper reports.
	_, v := newVolume(t, 2, 2, VersionBuggy31)
	sawCorrupt := false
	for i := 0; i < 2000 && !sawCorrupt; i++ {
		path := fmt.Sprintf("/modencode/%d", i)
		if err := v.Write(path, []byte("track data")); err != nil {
			t.Fatal(err)
		}
		if _, err := v.Read(path); err != nil {
			if _, ok := err.(ErrCorrupt); ok {
				sawCorrupt = true
			}
		}
	}
	if !sawCorrupt {
		t.Fatal("3.1 mirroring bug never surfaced in 2000 writes")
	}
	if v.CorruptReads == 0 {
		t.Fatal("corrupt-read counter not incremented")
	}
}

func TestVersion33HealsCorruption(t *testing.T) {
	// Same workload under 3.3: checksum verification must route around and
	// repair corrupt replicas — zero corrupt reads.
	_, v := newVolume(t, 2, 2, Version33)
	// Manually inject corruption (as the 3.1 bug would).
	if err := v.Write("/safe", []byte("important")); err != nil {
		t.Fatal(err)
	}
	v.Bricks()[0].corrupt["/safe"] = true
	f, err := v.Read("/safe")
	if err != nil {
		t.Fatalf("3.3 read failed on corrupt replica: %v", err)
	}
	if string(f.Content) != "important" {
		t.Fatal("3.3 returned corrupt content")
	}
	if v.Bricks()[0].corrupt["/safe"] {
		t.Fatal("corrupt replica not healed")
	}
}

func TestDistributeSpreadsAcrossSets(t *testing.T) {
	_, v := newVolume(t, 8, 2, Version33)
	for i := 0; i < 400; i++ {
		if err := v.Write(fmt.Sprintf("/d/%d", i), []byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	// Every replica set should hold a reasonable share (elastic hash).
	for i, b := range v.Bricks() {
		if b.FileCount() < 40 {
			t.Fatalf("brick %d holds %d of 400 files; distribution skewed", i, b.FileCount())
		}
	}
}

func TestPlacementDeterministic(t *testing.T) {
	if err := quick.Check(func(path string) bool {
		if path == "" {
			return true
		}
		_, v1 := newVolume(t, 6, 2, Version33)
		_, v2 := newVolume(t, 6, 2, Version33)
		s1 := v1.hashSet(path)[0].Name
		s2 := v2.hashSet(path)[0].Name
		return s1 == s2
	}, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestUsedVsRawBytes(t *testing.T) {
	_, v := newVolume(t, 4, 2, Version33)
	if err := v.Write("/a", make([]byte, 1000)); err != nil {
		t.Fatal(err)
	}
	if v.UsedBytes() != 1000 {
		t.Fatalf("used = %d, want 1000", v.UsedBytes())
	}
	if v.RawBytes() != 2000 {
		t.Fatalf("raw = %d, want 2000 (2 replicas)", v.RawBytes())
	}
}

func TestWriteMetaAccountsWithoutContent(t *testing.T) {
	_, v := newVolume(t, 2, 1, Version33)
	if err := v.WriteMeta("/sdss/dr7.tar", 60<<40); err != nil { // 60 TB
		t.Fatal(err)
	}
	size, err := v.Stat("/sdss/dr7.tar")
	if err != nil {
		t.Fatal(err)
	}
	if size != 60<<40 {
		t.Fatalf("size = %d, want 60 TB", size)
	}
}

func TestDeleteFreesSpace(t *testing.T) {
	_, v := newVolume(t, 2, 2, Version33)
	if err := v.Write("/tmp/x", make([]byte, 500)); err != nil {
		t.Fatal(err)
	}
	if err := v.Delete("/tmp/x"); err != nil {
		t.Fatal(err)
	}
	if v.UsedBytes() != 0 {
		t.Fatalf("used = %d after delete", v.UsedBytes())
	}
	if err := v.Delete("/tmp/x"); err == nil {
		t.Fatal("double delete must error")
	}
}

func TestListPrefix(t *testing.T) {
	_, v := newVolume(t, 4, 1, Version33)
	for _, p := range []string{"/pub/1000genomes/a", "/pub/1000genomes/b", "/priv/x"} {
		if err := v.Write(p, []byte("d")); err != nil {
			t.Fatal(err)
		}
	}
	got := v.List("/pub/")
	if len(got) != 2 || got[0] != "/pub/1000genomes/a" {
		t.Fatalf("List = %v", got)
	}
}

func TestOverwriteReplacesNotDuplicates(t *testing.T) {
	_, v := newVolume(t, 2, 1, Version33)
	if err := v.Write("/f", make([]byte, 100)); err != nil {
		t.Fatal(err)
	}
	if err := v.Write("/f", make([]byte, 300)); err != nil {
		t.Fatal(err)
	}
	if v.UsedBytes() != 300 {
		t.Fatalf("used = %d after overwrite, want 300", v.UsedBytes())
	}
}

func TestBadVolumeConfigs(t *testing.T) {
	e := sim.NewEngine(1)
	d := simdisk.New(e, "d", 1e9, 1e9, 1<<30)
	b := NewBrick("b", "n", d)
	if _, err := NewVolume(e, "v", 2, Version33, []*Brick{b}); err == nil {
		t.Fatal("1 brick with replica 2 must fail")
	}
	if _, err := NewVolume(e, "v", 0, Version33, []*Brick{b}); err == nil {
		t.Fatal("replica 0 must fail")
	}
	if _, err := NewVolume(e, "v", 1, Version33, nil); err == nil {
		t.Fatal("no bricks must fail")
	}
}

func TestHealAllSweep(t *testing.T) {
	_, v := newVolume(t, 2, 2, Version33)
	b1 := v.Bricks()[1]
	b1.SetOnline(false)
	for i := 0; i < 10; i++ {
		if err := v.Write(fmt.Sprintf("/h/%d", i), []byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	b1.SetOnline(true)
	healed := v.HealAll()
	if healed != 10 {
		t.Fatalf("healed %d, want 10", healed)
	}
	if b1.FileCount() != 10 {
		t.Fatalf("brick1 has %d files after heal, want 10", b1.FileCount())
	}
}
